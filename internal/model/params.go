package model

import (
	"time"

	"azurebench/internal/storecommon"
)

// Params holds every service-time and capacity constant of the simulated
// storage fabric. The defaults (Default) are calibrated so that the
// paper's anchor measurements emerge from the queueing model rather than
// being hard-coded per experiment:
//
//   - per-blob service rate 60 MB/s ⇒ page-blob upload saturates ≈56 MB/s
//     (paper: 60 MB/s);
//   - 30 ms per-block commit overhead ⇒ block-blob upload ≈21 MB/s (paper:
//     21 MB/s);
//   - 3 read replicas ⇒ whole-blob download ≈170 MB/s (paper: 165 MB/s),
//     block-wise read ≈104 MB/s (paper: 104 MB/s), random page read
//     ≈72 MB/s (paper: 71 MB/s);
//   - 2 ms queue-op occupancy ⇒ the documented 500 msg/s per-queue target;
//   - 4 table partition servers ⇒ "flat until 4 concurrent clients".
//
// Operation cost is split into occupancy (time the partition server is
// held — this is what contention queues on) and latency (client-perceived
// pipeline time that does not occupy the server).
type Params struct {
	// Network.
	RTT time.Duration // client<->storage round trip per request

	// Replication: writes pay (Replicas-1) pipeline hops of ReplHop each;
	// reads are served by any replica.
	Replicas int
	ReplHop  time.Duration

	// Blob service.
	BlobServerRate        float64       // bytes/s a blob partition server moves
	BlockWriteOverhead    time.Duration // PutBlock bookkeeping (commit-log append etc.)
	PageWriteOverhead     time.Duration // PutPage in-place write bookkeeping
	BlockReadOverhead     time.Duration // per sequential block GET
	PageReadOverhead      time.Duration // per random page GET (page-index lookup)
	BlockDownloadSetup    time.Duration // whole-blob GET, block blob
	PageDownloadSetup     time.Duration // whole-blob GET, page blob (range assembly)
	CommitBase            time.Duration // PutBlockList base cost
	CommitPerBlock        time.Duration // PutBlockList per referenced block
	ContainerOpOcc        time.Duration // create/delete container/queue/table
	BlobReadReplicas      int           // replicas serving reads (= Replicas)
	ServerConcurrency     int           // request slots per partition server
	PerBlobThroughputBps  float64       // documented per-blob cap (= BlobServerRate)
	AccountBandwidthBps   float64       // 3 GB/s account target
	AccountOpsPerSec      float64       // 5000 tx/s account target
	AccountBurst          float64       // token-bucket burst for account tx
	AccountBandwidthBurst float64       // token-bucket burst for account bytes

	// Queue service.
	QueueOpsPerSec   float64       // documented 500 msg/s per-queue target
	QueueBurst       float64       // token-bucket burst per queue
	QueueByteRate    float64       // bytes/s through a queue server
	QueuePutOcc      time.Duration // server occupancy per operation
	QueuePeekOcc     time.Duration
	QueueGetOcc      time.Duration
	QueueDeleteOcc   time.Duration
	QueuePutLat      time.Duration // client-perceived pipeline latency
	QueuePeekLat     time.Duration
	QueueGetLat      time.Duration
	QueueDeleteLat   time.Duration
	QueueScanPerMsg  time.Duration // Get/Peek cost per message resident in the queue
	Quirk16KBGet     bool          // reproduce the paper's unexplained 16 KB Get anomaly
	Quirk16KBPenalty time.Duration

	// Table service.
	TableServers       int // partition servers a table spreads over
	PartitionOpsPerSec float64
	PartitionBurst     float64
	TableInsertOcc     time.Duration
	TableQueryOcc      time.Duration
	TableUpdateOcc     time.Duration
	TableDeleteOcc     time.Duration
	TableInsertRate    float64 // bytes/s
	TableQueryRate     float64
	TableUpdateRate    float64
	TableInsertLat     time.Duration
	TableQueryLat      time.Duration
	TableUpdateLat     time.Duration
	TableDeleteLat     time.Duration

	// Partition management (internal/partitionmgr). With PartitionDynamic
	// false the table service keeps the paper's static first-sight
	// round-robin placement; true activates the partition master's control
	// loop — splitting ranges hotter than PartitionSplitOpsPerSec, merging
	// neighbours colder than PartitionMergeOpsPerSec, scaling out to
	// MaxTableServers — with each moved range unavailable (ServerBusy) for
	// PartitionMigrationBlackout. Clients cache the per-table partition map
	// for PartitionMapCacheTTL and refetch on expiry or redirect.
	PartitionDynamic           bool
	MaxTableServers            int
	PartitionSplitOpsPerSec    float64
	PartitionMergeOpsPerSec    float64
	PartitionControlInterval   time.Duration
	PartitionMigrationBlackout time.Duration
	PartitionMapCacheTTL       time.Duration

	// Geo-replication (internal/georepl + the cloud geo glue). With
	// GeoRegions <= 1 the account is single-region and none of these
	// parameters is consulted — the simulation is byte-identical to a
	// build without geo-replication. GeoRegions 2 pairs the account with a
	// secondary region: mutations ship asynchronously over a WAN link with
	// GeoWANRTT round trip and asymmetric bandwidth (forward vs failback),
	// batched so replication staleness stays within
	// GeoReplicationLagBound. On a region outage the failover controller
	// waits GeoFailoverDetection (health-probe consensus) before promoting
	// the secondary; the cross-region ownership handoff blacks ranges out
	// for GeoPromotionBlackout via the partition-map protocol.
	GeoRegions             int
	GeoReplicationLagBound time.Duration
	GeoWANRTT              time.Duration
	GeoWANForwardBps       float64
	GeoWANReverseBps       float64
	GeoFailoverDetection   time.Duration
	GeoPromotionBlackout   time.Duration

	// Caching service (the §II caching artifact, future work in the paper).
	CacheNodes        int
	CacheNodeCapacity int64
	CacheGetOcc       time.Duration
	CachePutOcc       time.Duration
	CacheByteRate     float64 // bytes/s through a cache node (RAM speed)
	CacheLat          time.Duration

	// Compute fabric provisioning (paper future work: "resource
	// provisioning times and application deployment timings").
	VMBootBase     time.Duration // minimum instance provisioning time
	VMBootJitter   time.Duration // uniform extra boot time per instance
	PlacementDelay time.Duration // fabric-controller serial placement cost

	// Client behaviour.
	RequestOverhead time.Duration // serialization/auth signing on the VM
	ThinkJitter     float64       // multiplicative jitter on think-time sleeps
	RetryBackoff    time.Duration // sleep before retrying a ServerBusy op (paper: 1 s)
}

// Default returns the calibrated parameter set.
func Default() Params {
	return Params{
		RTT: 2 * time.Millisecond,

		Replicas: storecommon.Replicas,
		ReplHop:  500 * time.Microsecond,

		BlobServerRate:        60 * storecommon.MB,
		BlockWriteOverhead:    30 * time.Millisecond,
		PageWriteOverhead:     200 * time.Microsecond,
		BlockReadOverhead:     12 * time.Millisecond,
		PageReadOverhead:      25 * time.Millisecond,
		BlockDownloadSetup:    100 * time.Millisecond,
		PageDownloadSetup:     500 * time.Millisecond,
		CommitBase:            10 * time.Millisecond,
		CommitPerBlock:        50 * time.Microsecond,
		ContainerOpOcc:        5 * time.Millisecond,
		BlobReadReplicas:      storecommon.Replicas,
		ServerConcurrency:     1,
		PerBlobThroughputBps:  storecommon.PerBlobThroughputBps,
		AccountBandwidthBps:   storecommon.AccountBandwidthBps,
		AccountOpsPerSec:      storecommon.AccountOpsPerSec,
		AccountBurst:          500,
		AccountBandwidthBurst: 256 * storecommon.MB,

		QueueOpsPerSec: storecommon.QueueOpsPerSec,
		QueueBurst:     50,
		QueueByteRate:  50 * storecommon.MB,
		// Occupancies are set slightly below the 500 ops/s limiter period
		// (writes pay +1 ms replication), so the documented scalability
		// target — not raw server speed — is what caps a hot queue.
		QueuePutOcc:      800 * time.Microsecond,
		QueuePeekOcc:     1400 * time.Microsecond,
		QueueGetOcc:      900 * time.Microsecond,
		QueueDeleteOcc:   600 * time.Microsecond,
		QueuePutLat:      20 * time.Millisecond,
		QueuePeekLat:     12 * time.Millisecond,
		QueueGetLat:      25 * time.Millisecond,
		QueueDeleteLat:   15 * time.Millisecond,
		QueueScanPerMsg:  200 * time.Nanosecond,
		Quirk16KBGet:     true,
		Quirk16KBPenalty: 25 * time.Millisecond,

		TableServers:       4,
		PartitionOpsPerSec: storecommon.PartitionOpsPerSec,
		PartitionBurst:     50,
		TableInsertOcc:     2 * time.Millisecond,
		TableQueryOcc:      1500 * time.Microsecond,
		TableUpdateOcc:     3 * time.Millisecond,
		TableDeleteOcc:     2 * time.Millisecond,
		TableInsertRate:    3 * storecommon.MB,
		TableQueryRate:     6 * storecommon.MB,
		TableUpdateRate:    2 * storecommon.MB,
		TableInsertLat:     15 * time.Millisecond,
		TableQueryLat:      10 * time.Millisecond,
		TableUpdateLat:     18 * time.Millisecond,
		TableDeleteLat:     12 * time.Millisecond,

		PartitionDynamic:           false,
		MaxTableServers:            8,
		PartitionSplitOpsPerSec:    250,
		PartitionMergeOpsPerSec:    50,
		PartitionControlInterval:   time.Second,
		PartitionMigrationBlackout: 300 * time.Millisecond,
		PartitionMapCacheTTL:       2 * time.Second,

		GeoRegions:             1,
		GeoReplicationLagBound: 5 * time.Second,
		GeoWANRTT:              70 * time.Millisecond,
		GeoWANForwardBps:       125 * storecommon.MB, // ~1 Gb/s provisioned egress
		GeoWANReverseBps:       50 * storecommon.MB,  // narrower failback path
		GeoFailoverDetection:   2 * time.Second,
		GeoPromotionBlackout:   300 * time.Millisecond,

		CacheNodes:        4,
		CacheNodeCapacity: 128 * storecommon.MB,
		CacheGetOcc:       300 * time.Microsecond,
		CachePutOcc:       400 * time.Microsecond,
		CacheByteRate:     1 * storecommon.GB,
		CacheLat:          time.Millisecond,

		VMBootBase:     6 * time.Minute,
		VMBootJitter:   4 * time.Minute,
		PlacementDelay: 2 * time.Second,

		RequestOverhead: 300 * time.Microsecond,
		ThinkJitter:     0.10,
		RetryBackoff:    time.Second,
	}
}

// CacheOcc is the cache-node occupancy of an operation moving size bytes.
func (p Params) CacheOcc(write bool, size int64) time.Duration {
	base := p.CacheGetOcc
	if write {
		base = p.CachePutOcc
	}
	return base + rate(size, p.CacheByteRate)
}

// rate converts a byte count over a bytes/s rate into a duration.
func rate(size int64, bps float64) time.Duration {
	if size <= 0 || bps <= 0 {
		return 0
	}
	return time.Duration(float64(size) / bps * float64(time.Second))
}

// replCost is the extra occupancy a mutation pays for synchronous
// replication to the remaining replicas.
func (p Params) replCost() time.Duration {
	if p.Replicas <= 1 {
		return 0
	}
	return time.Duration(p.Replicas-1) * p.ReplHop
}

// ReplCost exposes the synchronous-replication component of mutation
// occupancies so the tracing layer can attribute it to its own pipeline
// stage instead of folding it into generic server time.
func (p Params) ReplCost() time.Duration { return p.replCost() }

// --- Blob occupancy ---

// BlockPutOcc is the server occupancy of a PutBlock of size bytes.
func (p Params) BlockPutOcc(size int64) time.Duration {
	return p.BlockWriteOverhead + rate(size, p.BlobServerRate) + p.replCost()
}

// PagePutOcc is the server occupancy of a PutPage of size bytes.
func (p Params) PagePutOcc(size int64) time.Duration {
	return p.PageWriteOverhead + rate(size, p.BlobServerRate) + p.replCost()
}

// BlockGetOcc is the replica occupancy of a single sequential block read.
func (p Params) BlockGetOcc(size int64) time.Duration {
	return p.BlockReadOverhead + rate(size, p.BlobServerRate)
}

// PageGetOcc is the replica occupancy of a random page read (includes the
// page-index lookup that makes random access costlier than sequential).
func (p Params) PageGetOcc(size int64) time.Duration {
	return p.PageReadOverhead + rate(size, p.BlobServerRate)
}

// DownloadOcc is the replica occupancy of a whole-blob download.
func (p Params) DownloadOcc(page bool, size int64) time.Duration {
	setup := p.BlockDownloadSetup
	if page {
		setup = p.PageDownloadSetup
	}
	return setup + rate(size, p.BlobServerRate)
}

// CommitOcc is the occupancy of a PutBlockList over n blocks.
func (p Params) CommitOcc(n int) time.Duration {
	return p.CommitBase + time.Duration(n)*p.CommitPerBlock + p.replCost()
}

// DeleteBlobOcc is the occupancy of a DeleteBlob.
func (p Params) DeleteBlobOcc() time.Duration {
	return p.ContainerOpOcc + p.replCost()
}

// --- Queue occupancy/latency ---

// QueueOp names a queue operation for cost lookup.
type QueueOp int

// Queue operations.
const (
	QPut QueueOp = iota
	QPeek
	QGet
	QDelete
)

// String names the operation.
func (op QueueOp) String() string {
	switch op {
	case QPut:
		return "Put"
	case QPeek:
		return "Peek"
	case QGet:
		return "Get"
	case QDelete:
		return "Delete"
	}
	return "?"
}

// QueueOcc is the queue server occupancy of op on a message of size bytes
// while qlen messages are resident.
func (p Params) QueueOcc(op QueueOp, size int64, qlen int) time.Duration {
	d := rate(size, p.QueueByteRate)
	switch op {
	case QPut:
		d += p.QueuePutOcc + p.replCost()
	case QPeek:
		d += p.QueuePeekOcc + time.Duration(qlen)*p.QueueScanPerMsg
	case QGet:
		d += p.QueueGetOcc + p.replCost() + time.Duration(qlen)*p.QueueScanPerMsg
	case QDelete:
		d += p.QueueDeleteOcc + p.replCost()
	}
	return d
}

// QueueLat is the non-occupying pipeline latency of op, including the
// 16 KB Get anomaly the paper reports but cannot explain (reproduced here
// as a documented emulation quirk, switchable via Quirk16KBGet).
func (p Params) QueueLat(op QueueOp, size int64) time.Duration {
	var d time.Duration
	switch op {
	case QPut:
		d = p.QueuePutLat
	case QPeek:
		d = p.QueuePeekLat
	case QGet:
		d = p.QueueGetLat
		if p.Quirk16KBGet && size > 8*storecommon.KB && size <= 16*storecommon.KB {
			d += p.Quirk16KBPenalty
		}
	case QDelete:
		d = p.QueueDeleteLat
	}
	return d
}

// --- Table occupancy/latency ---

// TableOp names a table operation for cost lookup.
type TableOp int

// Table operations.
const (
	TInsert TableOp = iota
	TQuery
	TUpdate
	TDelete
)

// String names the operation.
func (op TableOp) String() string {
	switch op {
	case TInsert:
		return "Insert"
	case TQuery:
		return "Query"
	case TUpdate:
		return "Update"
	case TDelete:
		return "Delete"
	}
	return "?"
}

// TableOcc is the partition-server occupancy of op on an entity of size
// bytes.
func (p Params) TableOcc(op TableOp, size int64) time.Duration {
	switch op {
	case TInsert:
		return p.TableInsertOcc + rate(size, p.TableInsertRate) + p.replCost()
	case TQuery:
		return p.TableQueryOcc + rate(size, p.TableQueryRate)
	case TUpdate:
		return p.TableUpdateOcc + rate(size, p.TableUpdateRate) + p.replCost()
	case TDelete:
		return p.TableDeleteOcc + p.replCost()
	}
	return 0
}

// TableLat is the non-occupying pipeline latency of op.
func (p Params) TableLat(op TableOp) time.Duration {
	switch op {
	case TInsert:
		return p.TableInsertLat
	case TQuery:
		return p.TableQueryLat
	case TUpdate:
		return p.TableUpdateLat
	case TDelete:
		return p.TableDeleteLat
	}
	return 0
}

// Xfer is the client NIC transfer time for size bytes at nicBps.
func Xfer(size int64, nicBps int64) time.Duration {
	return rate(size, float64(nicBps))
}
