// Package model is the single calibration point of the simulated Azure
// cloud: the VM size catalogue (the paper's Table I), the service-time
// constants of the storage fabric, and the scalability targets. Every
// constant that shapes a figure lives here, so ablations and
// re-calibrations touch one file.
package model

import "fmt"

// VMSize describes a web/worker role VM configuration (paper Table I).
type VMSize struct {
	Name     string
	CPUCores float64 // 0.5 denotes the Extra Small "shared" core
	MemoryMB int
	DiskGB   int
	// NICBps is the provisioned network bandwidth in bytes/second
	// (contemporaneous Azure allocations: 5 Mbps for Extra Small, then
	// 100 Mbps per core).
	NICBps int64
}

// String formats the size like the paper's Table I row.
func (v VMSize) String() string {
	cores := fmt.Sprintf("%g", v.CPUCores)
	if v.CPUCores == 0.5 {
		cores = "Shared"
	}
	return fmt.Sprintf("%-11s cores=%-6s mem=%dMB disk=%dGB nic=%dMbps",
		v.Name, cores, v.MemoryMB, v.DiskGB, v.NICBps*8/1_000_000)
}

// The VM sizes of Table I.
var (
	ExtraSmall = VMSize{Name: "ExtraSmall", CPUCores: 0.5, MemoryMB: 768, DiskGB: 20, NICBps: 5_000_000 / 8}
	Small      = VMSize{Name: "Small", CPUCores: 1, MemoryMB: 1792, DiskGB: 225, NICBps: 100_000_000 / 8}
	Medium     = VMSize{Name: "Medium", CPUCores: 2, MemoryMB: 3584, DiskGB: 490, NICBps: 200_000_000 / 8}
	Large      = VMSize{Name: "Large", CPUCores: 4, MemoryMB: 7168, DiskGB: 1000, NICBps: 400_000_000 / 8}
	ExtraLarge = VMSize{Name: "ExtraLarge", CPUCores: 8, MemoryMB: 14336, DiskGB: 2040, NICBps: 800_000_000 / 8}
)

// VMSizes lists the catalogue in Table I order.
var VMSizes = []VMSize{ExtraSmall, Small, Medium, Large, ExtraLarge}

// VMSizeByName looks a size up by name.
func VMSizeByName(name string) (VMSize, bool) {
	for _, v := range VMSizes {
		if v.Name == name {
			return v, true
		}
	}
	return VMSize{}, false
}
