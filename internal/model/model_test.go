package model

import (
	"testing"
	"time"

	"azurebench/internal/storecommon"
)

func TestVMSizesTableI(t *testing.T) {
	// The catalogue must match the paper's Table I.
	cases := []struct {
		name   string
		cores  float64
		memMB  int
		diskGB int
	}{
		{"ExtraSmall", 0.5, 768, 20},
		{"Small", 1, 1792, 225},
		{"Medium", 2, 3584, 490},
		{"Large", 4, 7168, 1000},
		{"ExtraLarge", 8, 14336, 2040},
	}
	if len(VMSizes) != len(cases) {
		t.Fatalf("catalogue has %d sizes", len(VMSizes))
	}
	for i, c := range cases {
		v := VMSizes[i]
		if v.Name != c.name || v.CPUCores != c.cores || v.MemoryMB != c.memMB || v.DiskGB != c.diskGB {
			t.Errorf("VMSizes[%d] = %+v, want %+v", i, v, c)
		}
	}
	if _, ok := VMSizeByName("Medium"); !ok {
		t.Error("VMSizeByName(Medium) missing")
	}
	if _, ok := VMSizeByName("Nope"); ok {
		t.Error("VMSizeByName(Nope) found")
	}
}

func TestNICBandwidthMonotone(t *testing.T) {
	for i := 1; i < len(VMSizes); i++ {
		if VMSizes[i].NICBps <= VMSizes[i-1].NICBps {
			t.Fatalf("NIC bandwidth not increasing at %s", VMSizes[i].Name)
		}
	}
}

// TestCalibrationAnchors checks that the default parameters put the
// steady-state service rates where the paper's measurements sit.
func TestCalibrationAnchors(t *testing.T) {
	p := Default()
	mb := func(occ time.Duration) float64 {
		return float64(storecommon.MB) / occ.Seconds() / float64(storecommon.MB)
	}
	// Block-blob upload saturates at ~21 MB/s (1 MB blocks).
	if got := mb(p.BlockPutOcc(storecommon.MB)); got < 18 || got > 24 {
		t.Errorf("block upload rate = %.1f MB/s, want ~21", got)
	}
	// Page-blob upload saturates near the 60 MB/s per-blob cap.
	if got := mb(p.PagePutOcc(storecommon.MB)); got < 50 || got > 62 {
		t.Errorf("page upload rate = %.1f MB/s, want ~55-60", got)
	}
	// Sequential block reads: ~104 MB/s over 3 replicas.
	if got := 3 * mb(p.BlockGetOcc(storecommon.MB)); got < 95 || got > 115 {
		t.Errorf("block-wise read rate = %.1f MB/s, want ~104", got)
	}
	// Random page reads: ~71 MB/s over 3 replicas.
	if got := 3 * mb(p.PageGetOcc(storecommon.MB)); got < 64 || got > 80 {
		t.Errorf("page-wise read rate = %.1f MB/s, want ~71", got)
	}
	// Whole-blob block download: ~165 MB/s over 3 replicas (100 MB blob).
	occ := p.DownloadOcc(false, 100*storecommon.MB)
	if got := 3 * float64(100*storecommon.MB) / occ.Seconds() / float64(storecommon.MB); got < 155 || got > 185 {
		t.Errorf("whole-blob download rate = %.1f MB/s, want ~165", got)
	}
	// Page whole-blob download must be slower than block (paper Fig. 4).
	if p.DownloadOcc(true, 100*storecommon.MB) <= occ {
		t.Error("page whole-blob download should be slower than block")
	}
}

func TestQueueOccupancyMatchesScalabilityTarget(t *testing.T) {
	p := Default()
	// 2 ms occupancy <=> the documented 500 ops/s per-queue ceiling.
	occ := p.QueueOcc(QPut, 0, 0)
	perSec := float64(time.Second) / float64(occ)
	if perSec < 250 || perSec > 600 {
		t.Fatalf("queue server capacity = %.0f ops/s, want around the 500/s target", perSec)
	}
}

func TestQueueCostOrdering(t *testing.T) {
	p := Default()
	size := int64(32 * storecommon.KB)
	peek := p.QueueOcc(QPeek, size, 0) + p.QueueLat(QPeek, size)
	put := p.QueueOcc(QPut, size, 0) + p.QueueLat(QPut, size)
	get := p.QueueOcc(QGet, size, 0) + p.QueueLat(QGet, size) +
		p.QueueOcc(QDelete, size, 0) + p.QueueLat(QDelete, size)
	if !(peek < put && put < get) {
		t.Fatalf("cost ordering violated: peek=%v put=%v get+delete=%v", peek, put, get)
	}
}

func TestQuirk16KBGet(t *testing.T) {
	p := Default()
	lat16 := p.QueueLat(QGet, 16*storecommon.KB)
	lat8 := p.QueueLat(QGet, 8*storecommon.KB)
	lat32 := p.QueueLat(QGet, 32*storecommon.KB)
	if lat16 <= lat8 || lat16 <= lat32 {
		t.Fatalf("16KB anomaly absent: 8K=%v 16K=%v 32K=%v", lat8, lat16, lat32)
	}
	p.Quirk16KBGet = false
	if p.QueueLat(QGet, 16*storecommon.KB) != lat8 {
		t.Fatal("disabling the quirk did not flatten the anomaly")
	}
	// Puts and peeks are unaffected.
	if p2 := Default(); p2.QueueLat(QPut, 16*storecommon.KB) != p2.QueueLat(QPut, 8*storecommon.KB) {
		t.Fatal("quirk leaked into Put")
	}
}

func TestTableCostOrdering(t *testing.T) {
	p := Default()
	size := int64(16 * storecommon.KB)
	query := p.TableOcc(TQuery, size) + p.TableLat(TQuery)
	insert := p.TableOcc(TInsert, size) + p.TableLat(TInsert)
	update := p.TableOcc(TUpdate, size) + p.TableLat(TUpdate)
	del := p.TableOcc(TDelete, size) + p.TableLat(TDelete)
	// Paper Fig. 8: update is the most expensive, query the cheapest.
	if !(query < insert && insert < update) {
		t.Fatalf("ordering violated: query=%v insert=%v update=%v", query, insert, update)
	}
	if !(query < del && del < update) {
		t.Fatalf("delete out of band: query=%v delete=%v update=%v", query, del, update)
	}
}

func TestOccupancyGrowsWithSize(t *testing.T) {
	p := Default()
	for _, op := range []TableOp{TInsert, TQuery, TUpdate} {
		if p.TableOcc(op, 64*storecommon.KB) <= p.TableOcc(op, 4*storecommon.KB) {
			t.Errorf("table %v occupancy not size-dependent", op)
		}
	}
	for _, op := range []QueueOp{QPut, QPeek, QGet} {
		if p.QueueOcc(op, 64*storecommon.KB, 0) <= p.QueueOcc(op, 4*storecommon.KB, 0) {
			t.Errorf("queue %v occupancy not size-dependent", op)
		}
	}
}

func TestQueueScanCostGrowsWithResidentMessages(t *testing.T) {
	p := Default()
	if p.QueueOcc(QGet, 0, 20000) <= p.QueueOcc(QGet, 0, 0) {
		t.Fatal("resident-message scan cost missing")
	}
	if p.QueueOcc(QPut, 0, 20000) != p.QueueOcc(QPut, 0, 0) {
		t.Fatal("puts must not pay scan cost")
	}
}

func TestReplicationAblation(t *testing.T) {
	p := Default()
	base := p.BlockPutOcc(storecommon.MB)
	p.Replicas = 1
	if p.BlockPutOcc(storecommon.MB) >= base {
		t.Fatal("removing replicas did not cheapen writes")
	}
	// Reads never pay replication.
	q := Default()
	r := Default()
	r.Replicas = 1
	if q.BlockGetOcc(storecommon.MB) != r.BlockGetOcc(storecommon.MB) {
		t.Fatal("reads charged for replication")
	}
}

func TestXfer(t *testing.T) {
	if got := Xfer(storecommon.MB, Small.NICBps); got < 80*time.Millisecond || got > 90*time.Millisecond {
		t.Fatalf("1MB over Small NIC = %v, want ~84ms", got)
	}
	if Xfer(0, Small.NICBps) != 0 {
		t.Fatal("zero bytes should cost nothing")
	}
}
