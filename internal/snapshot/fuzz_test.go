package snapshot

import (
	"bytes"
	"testing"
)

// FuzzSnapshotCodec drives Decode with arbitrary bytes (no crash, no
// corrupt-accept) and checks the decode(encode(x)) fixed point on
// whatever structured inputs the fuzzer reaches: any input that decodes
// must re-encode to the exact same bytes, and any single-byte
// corruption of a valid encoding must be rejected.
func FuzzSnapshotCodec(f *testing.F) {
	f.Add(buildSample().Encode(), uint8(0))
	f.Add((&File{}).Encode(), uint8(3))
	f.Add([]byte(Magic), uint8(0))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, flip uint8) {
		dec, err := Decode(data)
		if err != nil {
			return
		}
		enc := dec.Encode()
		if !bytes.Equal(enc, data) {
			t.Fatalf("decode(encode) not a fixed point: %d bytes in, %d out", len(data), len(enc))
		}
		// A bit flip anywhere in a valid file must break either a
		// section CRC or the whole-file SHA-256.
		if len(enc) > 0 {
			mut := append([]byte(nil), enc...)
			pos := int(flip) % len(mut)
			mut[pos] ^= 1 << (flip % 8)
			if bytes.Equal(mut, enc) {
				return
			}
			if _, err := Decode(mut); err == nil {
				t.Fatalf("corrupted byte %d accepted", pos)
			}
		}
	})
}
