// Package snapshot is a versioned, self-describing binary codec for
// checkpointing the full simulation state. A snapshot file is a flat
// sequence of named sections, each written by one stateful subsystem in
// a deterministic field order through the typed Writer, and each
// independently integrity-checked:
//
//	magic "AZSNAP1\n" | u32 version
//	repeat:  u32 nameLen | name | u32 payloadLen | payload | u32 crc32(payload)
//	u32 0xFFFFFFFF (end marker)
//	sha256 over every preceding byte
//
// All integers are big-endian. Sections appear in the order they were
// added, so encoding the same state twice yields identical bytes — the
// property the digest-policed restore tests lean on. The package
// deliberately imports nothing from the rest of the repo: every
// subsystem (sim kernel included) can depend on it without cycles.
package snapshot

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"time"
)

// Magic and Version identify the file format. Version bumps whenever
// the framing (not section contents) changes shape.
const (
	Magic   = "AZSNAP1\n"
	Version = 1
)

// endMarker terminates the section list; no real section name can be
// 2^32-1 bytes long.
const endMarker = 0xFFFFFFFF

// maxSectionBytes bounds a single section payload (and name) so a
// corrupted or adversarial length prefix cannot drive allocation to the
// full u32 range. 1 GiB is far above any real snapshot section.
const maxSectionBytes = 1 << 30

// ErrCorrupt wraps every integrity failure (bad magic, short file, CRC
// or SHA mismatch) so callers can distinguish corruption from
// state-shape errors raised by subsystem Load methods.
var ErrCorrupt = errors.New("snapshot: corrupt")

// A Snapshotter is one stateful subsystem. Save appends the subsystem's
// complete deterministic state to w in a fixed field order; Load
// restores it from a section decoded by the same order. Save must be
// read-only: checkpoints are taken mid-run and must not perturb the
// simulation they observe.
type Snapshotter interface {
	// SnapshotSection names this subsystem's section in the file.
	SnapshotSection() string
	// Save appends the subsystem state to w.
	Save(w *Writer)
	// Load restores the subsystem state from r.
	Load(r *Reader) error
}

// Writer accumulates one section's payload with typed, fixed-order
// appends.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// I64 appends a big-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 appends a float64 by bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Duration appends a time.Duration as int64 nanoseconds.
func (w *Writer) Duration(v time.Duration) { w.I64(int64(v)) }

// Time appends a time.Time as UnixNano, with the zero time as a
// distinguished sentinel so Load round-trips t.IsZero() exactly.
func (w *Writer) Time(t time.Time) {
	if t.IsZero() {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.I64(t.UnixNano())
}

// Bytes appends a length-prefixed byte slice.
func (w *Writer) BytesField(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader decodes one section's payload in the same order it was
// written. Errors are sticky: the first failure poisons the reader and
// every later read returns the zero value, so Load methods can decode
// a whole struct and check Err once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a raw section payload.
func NewReader(payload []byte) *Reader { return &Reader{buf: payload} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining reports how many undecoded bytes are left.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.err = fmt.Errorf("%w: section truncated (want %d bytes, have %d)", ErrCorrupt, n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 decodes one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool decodes a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 decodes a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 decodes a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 decodes a big-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int decodes an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 decodes a float64 by bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Duration decodes a time.Duration.
func (r *Reader) Duration() time.Duration { return time.Duration(r.I64()) }

// Time decodes a time.Time written by Writer.Time.
func (r *Reader) Time() time.Time {
	if !r.Bool() {
		return time.Time{}
	}
	ns := r.I64()
	if r.err != nil {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

// BytesField decodes a length-prefixed byte slice.
func (r *Reader) BytesField() []byte {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if n > maxSectionBytes {
		r.err = fmt.Errorf("%w: byte field length %d exceeds limit", ErrCorrupt, n)
		return nil
	}
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	n := r.U32()
	if r.err != nil {
		return ""
	}
	if n > maxSectionBytes {
		r.err = fmt.Errorf("%w: string length %d exceeds limit", ErrCorrupt, n)
		return ""
	}
	b := r.take(int(n))
	return string(b)
}

// Close verifies the section was consumed exactly: trailing bytes mean
// the writer and reader disagree about the field order, which is a
// versioning bug worth failing loudly on.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes after decode", ErrCorrupt, len(r.buf)-r.off)
	}
	return nil
}

// Section is one named, framed payload inside a File. Sections decoded
// from bytes carry Payload directly; sections built with Add pull their
// bytes from the live Writer at encode time.
type Section struct {
	Name    string
	Payload []byte

	writer *Writer
}

// File is an ordered collection of sections plus the encode/decode
// framing. The zero value is an empty file ready for Add.
type File struct {
	Sections []Section
}

// Add appends a new named section and returns the Writer that fills it.
// The payload is captured when the file is encoded, so callers write
// fields after Add in the natural order.
func (f *File) Add(name string) *Writer {
	f.Sections = append(f.Sections, Section{Name: name})
	w := &Writer{}
	idx := len(f.Sections) - 1
	f.Sections[idx].Payload = nil
	// The Writer mutates its own buffer; Encode pulls the final bytes
	// through the closure-free pointer stored here.
	f.Sections[idx].writer = w
	return w
}

// Section returns the named section, or nil.
func (f *File) Section(name string) *Section {
	for i := range f.Sections {
		if f.Sections[i].Name == name {
			return &f.Sections[i]
		}
	}
	return nil
}

// Reader returns a Reader over the named section's payload, or an
// error naming the missing section.
func (f *File) Reader(name string) (*Reader, error) {
	s := f.Section(name)
	if s == nil {
		return nil, fmt.Errorf("snapshot: missing section %q", name)
	}
	return NewReader(s.payload()), nil
}

// Encode renders the file to its canonical byte form.
func (f *File) Encode() []byte {
	out := make([]byte, 0, 256)
	out = append(out, Magic...)
	out = binary.BigEndian.AppendUint32(out, Version)
	for i := range f.Sections {
		s := &f.Sections[i]
		p := s.payload()
		out = binary.BigEndian.AppendUint32(out, uint32(len(s.Name)))
		out = append(out, s.Name...)
		out = binary.BigEndian.AppendUint32(out, uint32(len(p)))
		out = append(out, p...)
		out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(p))
	}
	out = binary.BigEndian.AppendUint32(out, endMarker)
	sum := sha256.Sum256(out)
	return append(out, sum[:]...)
}

// Decode parses and integrity-checks a canonical byte form, replacing
// f's sections.
func Decode(data []byte) (*File, error) {
	if len(data) < len(Magic)+4+4+sha256.Size {
		return nil, fmt.Errorf("%w: file too short (%d bytes)", ErrCorrupt, len(data))
	}
	body, tail := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	sum := sha256.Sum256(body)
	if string(sum[:]) != string(tail) {
		return nil, fmt.Errorf("%w: whole-file sha256 mismatch", ErrCorrupt)
	}
	if string(body[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	r := &Reader{buf: body, off: len(Magic)}
	if v := r.U32(); v != Version {
		if r.err != nil {
			return nil, r.err
		}
		return nil, fmt.Errorf("snapshot: unsupported version %d (want %d)", v, Version)
	}
	f := &File{}
	for {
		nameLen := r.U32()
		if r.err != nil {
			return nil, r.err
		}
		if nameLen == endMarker {
			break
		}
		if nameLen > maxSectionBytes {
			return nil, fmt.Errorf("%w: section name length %d exceeds limit", ErrCorrupt, nameLen)
		}
		name := string(r.take(int(nameLen)))
		plen := r.U32()
		if r.err != nil {
			return nil, r.err
		}
		if plen > maxSectionBytes {
			return nil, fmt.Errorf("%w: section %q payload length %d exceeds limit", ErrCorrupt, name, plen)
		}
		payload := r.take(int(plen))
		crc := r.U32()
		if r.err != nil {
			return nil, r.err
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return nil, fmt.Errorf("%w: crc mismatch in section %q", ErrCorrupt, name)
		}
		cp := make([]byte, len(payload))
		copy(cp, payload)
		f.Sections = append(f.Sections, Section{Name: name, Payload: cp})
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after end marker", ErrCorrupt, r.Remaining())
	}
	return f, nil
}

// WriteFile encodes the file to path.
func (f *File) WriteFile(path string) error {
	return os.WriteFile(path, f.Encode(), 0o644)
}

// ReadFile reads, parses and integrity-checks a snapshot at path.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// payload returns the section bytes, pulling from the live Writer when
// the section was built with Add.
func (s *Section) payload() []byte {
	if s.writer != nil {
		return s.writer.buf
	}
	return s.Payload
}

// Wrap builds a Snapshotter from a section name and a Save/Load pair —
// the glue for subsystems whose section name is assigned by the
// assembler (e.g. the two region clouds of a geo-replicated account
// must register the same engine types under distinct names).
func Wrap(name string, save func(*Writer), load func(*Reader) error) Snapshotter {
	return wrapped{name: name, save: save, load: load}
}

type wrapped struct {
	name string
	save func(*Writer)
	load func(*Reader) error
}

func (s wrapped) SnapshotSection() string { return s.name }
func (s wrapped) Save(w *Writer)          { s.save(w) }
func (s wrapped) Load(r *Reader) error    { return s.load(r) }

// Registry is an ordered set of Snapshotters. SaveAll writes one
// section per registered subsystem in registration order; LoadAll
// restores each from its section; VerifyAll re-saves the live state and
// byte-compares it against the file, naming the first divergent section
// — the integrity gate behind replay-verified restore.
type Registry struct {
	items []Snapshotter
}

// Register appends s. Registration order is section order, so register
// in a deterministic sequence.
func (reg *Registry) Register(s Snapshotter) { reg.items = append(reg.items, s) }

// SaveAll appends every registered subsystem's section to f.
func (reg *Registry) SaveAll(f *File) {
	for _, s := range reg.items {
		s.Save(f.Add(s.SnapshotSection()))
	}
}

// LoadAll restores every registered subsystem from its section in f.
// Every registered section must be present and fully consumed.
func (reg *Registry) LoadAll(f *File) error {
	for _, s := range reg.items {
		name := s.SnapshotSection()
		r, err := f.Reader(name)
		if err != nil {
			return err
		}
		if err := s.Load(r); err != nil {
			return fmt.Errorf("snapshot: load %q: %w", name, err)
		}
		if err := r.Close(); err != nil {
			return fmt.Errorf("snapshot: load %q: %w", name, err)
		}
	}
	return nil
}

// VerifyAll re-saves the live state of every registered subsystem and
// byte-compares each section against f, returning an error naming the
// first divergent section. Equal states produce equal bytes because
// Save is deterministic, so a mismatch pinpoints exactly which
// subsystem's replayed state drifted from the checkpoint.
func (reg *Registry) VerifyAll(f *File) error {
	for _, s := range reg.items {
		name := s.SnapshotSection()
		want := f.Section(name)
		if want == nil {
			return fmt.Errorf("snapshot: verify: missing section %q", name)
		}
		w := &Writer{}
		s.Save(w)
		if string(w.buf) != string(want.payload()) {
			return fmt.Errorf("snapshot: verify: section %q diverged from checkpoint (replayed %d bytes, saved %d)",
				name, len(w.buf), len(want.payload()))
		}
	}
	return nil
}
