package snapshot

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"path/filepath"
	"testing"
	"time"
)

func buildSample() *File {
	f := &File{}
	w := f.Add("alpha")
	w.U8(7)
	w.Bool(true)
	w.U32(0xdeadbeef)
	w.U64(1 << 40)
	w.I64(-42)
	w.Int(99)
	w.F64(3.25)
	w.Duration(1500 * time.Millisecond)
	w.Time(time.Unix(0, 1337).UTC())
	w.Time(time.Time{})
	w.BytesField([]byte{1, 2, 3})
	w.String("hello")
	f.Add("empty")
	return f
}

func TestRoundTrip(t *testing.T) {
	enc := buildSample().Encode()
	f, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Sections) != 2 || f.Sections[0].Name != "alpha" || f.Sections[1].Name != "empty" {
		t.Fatalf("sections = %+v", f.Sections)
	}
	r, err := f.Reader("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if v := r.U8(); v != 7 {
		t.Fatalf("U8 = %d", v)
	}
	if !r.Bool() {
		t.Fatal("Bool = false")
	}
	if v := r.U32(); v != 0xdeadbeef {
		t.Fatalf("U32 = %x", v)
	}
	if v := r.U64(); v != 1<<40 {
		t.Fatalf("U64 = %d", v)
	}
	if v := r.I64(); v != -42 {
		t.Fatalf("I64 = %d", v)
	}
	if v := r.Int(); v != 99 {
		t.Fatalf("Int = %d", v)
	}
	if v := r.F64(); v != 3.25 {
		t.Fatalf("F64 = %v", v)
	}
	if v := r.Duration(); v != 1500*time.Millisecond {
		t.Fatalf("Duration = %v", v)
	}
	if v := r.Time(); !v.Equal(time.Unix(0, 1337)) {
		t.Fatalf("Time = %v", v)
	}
	if v := r.Time(); !v.IsZero() {
		t.Fatalf("zero Time = %v", v)
	}
	if v := r.BytesField(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("BytesField = %v", v)
	}
	if v := r.String(); v != "hello" {
		t.Fatalf("String = %q", v)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-encoding a decoded file is the identity: deterministic framing.
	if !bytes.Equal(f.Encode(), enc) {
		t.Fatal("re-encode differs from original bytes")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	if !bytes.Equal(buildSample().Encode(), buildSample().Encode()) {
		t.Fatal("two encodes of identical state differ")
	}
}

func TestCorruptionRejected(t *testing.T) {
	enc := buildSample().Encode()
	// Flipping any single byte must fail decode: either the section CRC
	// or the whole-file SHA-256 catches it.
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x40
		if _, err := Decode(mut); err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
	}
	// Truncations must fail too.
	for _, n := range []int{0, 7, len(enc) / 2, len(enc) - 1} {
		if _, err := Decode(enc[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestCRCDistinctFromSHA(t *testing.T) {
	// Corrupt a payload byte AND refresh the trailing SHA so only the
	// per-section CRC can catch it.
	f := &File{}
	f.Add("s").String("payload-bytes-here")
	enc := f.Encode()
	idx := bytes.Index(enc, []byte("payload-bytes-here"))
	if idx < 0 {
		t.Fatal("payload not found")
	}
	enc[idx] ^= 0xff
	body := enc[:len(enc)-32]
	g, err := Decode(append(body, shaOf(body)...))
	if err == nil {
		t.Fatalf("crc corruption accepted: %+v", g)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestReaderSticky(t *testing.T) {
	r := NewReader([]byte{1})
	r.U64() // truncated
	if r.Err() == nil {
		t.Fatal("no error after short read")
	}
	if v := r.U32(); v != 0 {
		t.Fatalf("poisoned reader returned %d", v)
	}
	if err := r.Close(); err == nil {
		t.Fatal("Close on poisoned reader succeeded")
	}
}

func TestTrailingBytesDetected(t *testing.T) {
	w := &Writer{}
	w.U64(1)
	w.U64(2)
	r := NewReader(w.Bytes())
	r.U64()
	if err := r.Close(); err == nil {
		t.Fatal("trailing bytes not detected")
	}
}

func TestFileRoundTripOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.snap")
	if err := buildSample().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Encode(), buildSample().Encode()) {
		t.Fatal("disk round trip changed bytes")
	}
}

func TestRegistry(t *testing.T) {
	a := &fakeSnap{name: "a", v: 11}
	b := &fakeSnap{name: "b", v: 22}
	reg := &Registry{}
	reg.Register(a)
	reg.Register(b)
	f := &File{}
	reg.SaveAll(f)
	if err := reg.VerifyAll(f); err != nil {
		t.Fatalf("verify on unchanged state: %v", err)
	}
	b.v = 23
	if err := reg.VerifyAll(f); err == nil {
		t.Fatal("verify missed divergence")
	} else if got := err.Error(); !bytes.Contains([]byte(got), []byte(`"b"`)) {
		t.Fatalf("divergence error does not name section b: %v", got)
	}
	// Load restores the saved values.
	dec, err := Decode(f.Encode())
	if err != nil {
		t.Fatal(err)
	}
	a.v, b.v = 0, 0
	if err := reg.LoadAll(dec); err != nil {
		t.Fatal(err)
	}
	if a.v != 11 || b.v != 22 {
		t.Fatalf("loaded a=%d b=%d", a.v, b.v)
	}
}

type fakeSnap struct {
	name string
	v    uint64
}

func (f *fakeSnap) SnapshotSection() string { return f.name }
func (f *fakeSnap) Save(w *Writer)          { w.U64(f.v) }
func (f *fakeSnap) Load(r *Reader) error {
	f.v = r.U64()
	return r.Err()
}

func shaOf(b []byte) []byte {
	h := sha256.Sum256(b)
	return h[:]
}
