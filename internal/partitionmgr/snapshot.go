package partitionmgr

import (
	"sort"

	snap "azurebench/internal/snapshot"
)

// SnapshotSection implements snap.Snapshotter.
func (m *Master) SnapshotSection() string { return "partitionmgr/master" }

// Save appends the master's full state: every table's versioned range
// map with its load window (the per-range op counts and key histograms
// accumulated since the last control tick), the control-loop cursor,
// the static placement map, counters, and the structural-event
// timeline. Tables serialize in creation order — the master's own
// deterministic iteration order — and map contents in sorted key order.
func (m *Master) Save(w *snap.Writer) {
	w.Int(m.servers)
	w.Int(m.nextRR)
	w.Duration(m.lastTick)
	w.Duration(m.nextTick)
	w.Bool(m.ticked)

	w.Int(len(m.order))
	for _, name := range m.order {
		t := m.tables[name]
		w.String(t.name)
		w.U64(t.version)
		w.Int(len(t.ranges))
		for _, r := range t.ranges {
			w.String(r.start)
			w.Int(r.owner)
			w.Duration(r.unavailUntil)
			w.F64(r.ops)
			keys := make([]string, 0, len(r.keys))
			for k := range r.keys {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			w.Int(len(keys))
			for _, k := range keys {
				w.String(k)
				w.F64(r.keys[k])
			}
		}
	}

	placeKeys := make([]string, 0, len(m.place))
	for k := range m.place {
		placeKeys = append(placeKeys, k)
	}
	sort.Strings(placeKeys)
	w.Int(len(placeKeys))
	for _, k := range placeKeys {
		w.String(k)
		w.Int(m.place[k])
	}

	w.U64(m.stats.Splits)
	w.U64(m.stats.Merges)
	w.U64(m.stats.Migrations)
	w.U64(m.stats.Redirects)
	w.U64(m.stats.HandoffRejects)
	w.U64(m.stats.MapRefreshes)
	w.U64(m.stats.Promotions)

	w.Int(len(m.events))
	for _, e := range m.events {
		w.Duration(e.At)
		w.U8(uint8(e.Kind))
		w.String(e.Table)
		w.String(e.Start)
		w.String(e.SplitKey)
		w.Int(e.From)
		w.Int(e.To)
		w.U64(e.Version)
		w.Duration(e.Blackout)
	}
}

// Load restores a master saved by Save, replacing all live state. The
// PRNG is shared with the simulation environment and restored there.
func (m *Master) Load(r *snap.Reader) error {
	m.servers = r.Int()
	m.nextRR = r.Int()
	m.lastTick = r.Duration()
	m.nextTick = r.Duration()
	m.ticked = r.Bool()

	nt := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	m.tables = make(map[string]*tableState, nt)
	m.order = m.order[:0]
	for i := 0; i < nt; i++ {
		t := &tableState{
			name:    r.String(),
			version: r.U64(),
		}
		nr := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		for j := 0; j < nr; j++ {
			rs := &rangeState{
				start:        r.String(),
				owner:        r.Int(),
				unavailUntil: r.Duration(),
				ops:          r.F64(),
			}
			nk := r.Int()
			if err := r.Err(); err != nil {
				return err
			}
			rs.keys = make(map[string]float64, nk)
			for k := 0; k < nk; k++ {
				key := r.String()
				rs.keys[key] = r.F64()
			}
			t.ranges = append(t.ranges, rs)
		}
		m.tables[t.name] = t
		m.order = append(m.order, t.name)
	}

	np := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	m.place = make(map[string]int, np)
	for i := 0; i < np; i++ {
		k := r.String()
		m.place[k] = r.Int()
	}

	m.stats = Stats{
		Splits:         r.U64(),
		Merges:         r.U64(),
		Migrations:     r.U64(),
		Redirects:      r.U64(),
		HandoffRejects: r.U64(),
		MapRefreshes:   r.U64(),
		Promotions:     r.U64(),
	}

	ne := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	m.events = m.events[:0]
	for i := 0; i < ne; i++ {
		m.events = append(m.events, Event{
			At:       r.Duration(),
			Kind:     EventKind(r.U8()),
			Table:    r.String(),
			Start:    r.String(),
			SplitKey: r.String(),
			From:     r.Int(),
			To:       r.Int(),
			Version:  r.U64(),
			Blackout: r.Duration(),
		})
	}
	return r.Err()
}
