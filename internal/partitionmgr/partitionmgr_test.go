package partitionmgr

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"azurebench/internal/sim"
)

func dynCfg() Config {
	return Config{
		Dynamic:           true,
		Servers:           2,
		MaxServers:        4,
		SplitOpsPerSec:    100,
		MergeOpsPerSec:    10,
		ControlInterval:   time.Second,
		MigrationBlackout: 100 * time.Millisecond,
	}
}

func TestStaticPlaceFirstSightRoundRobin(t *testing.T) {
	m := New(Config{Servers: 4}, nil)
	for i := 0; i < 8; i++ {
		if got, want := m.Place("t", fmt.Sprintf("pk%d", i)), i%4; got != want {
			t.Fatalf("Place(pk%d) = %d, want %d", i, got, want)
		}
	}
	// Repeat lookups are pinned.
	if got := m.Place("t", "pk5"); got != 1 {
		t.Fatalf("repeat Place(pk5) = %d, want 1", got)
	}
	if m.Dynamic() {
		t.Fatal("static master claims dynamic")
	}
}

// drive feeds n requests for pk spread uniformly over [from, to).
func drive(m *Master, table, pk string, n int, from, to time.Duration) []Event {
	var evs []Event
	step := (to - from) / time.Duration(n)
	for i := 0; i < n; i++ {
		evs = append(evs, m.Record(from+time.Duration(i)*step, table, pk)...)
	}
	return evs
}

func TestSplitIsolatesHotKey(t *testing.T) {
	m := New(dynCfg(), sim.NewRand(1))
	// Second one: a hot key and a warm key in the same range, 400 ops/s
	// total — over the 100/s split threshold.
	var evs []Event
	for i := 0; i < 400; i++ {
		pk := "hot"
		if i%4 == 0 {
			pk = "warm"
		}
		evs = append(evs, m.Record(time.Duration(i)*5*time.Millisecond, "t", pk)...)
	}
	var split *Event
	for i := range evs {
		if evs[i].Kind == Split {
			split = &evs[i]
			break
		}
	}
	if split == nil {
		t.Fatal("no split from a 400 ops/s range")
	}
	if split.Blackout != 100*time.Millisecond {
		t.Fatalf("split blackout = %v", split.Blackout)
	}
	// The two keys must now live on different ranges.
	hotOwner, _ := m.Lookup("t", "hot")
	warmOwner, _ := m.Lookup("t", "warm")
	snap := m.Snapshot("t")
	if snap.Ranges() < 2 {
		t.Fatalf("table still has %d range(s) after split", snap.Ranges())
	}
	if snap.Owner("hot") != hotOwner || snap.Owner("warm") != warmOwner {
		t.Fatal("snapshot owners disagree with authoritative lookup")
	}
	if m.Stats().Splits == 0 || m.Stats().Ranges < 2 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestBlackoutExpires(t *testing.T) {
	m := New(dynCfg(), sim.NewRand(1))
	evs := drive(m, "t", "a", 200, 0, time.Second)
	evs = append(evs, drive(m, "t", "b", 200, time.Second, 2*time.Second)...)
	var until time.Duration
	for _, ev := range evs {
		if ev.Kind == Split {
			until = ev.At + ev.Blackout
		}
	}
	if until == 0 {
		t.Fatal("no split")
	}
	if _, u := m.Lookup("t", "b"); u != 0 && u != until {
		// The split half's deadline must match the event's window.
		t.Fatalf("unavailUntil = %v, want %v", u, until)
	}
}

func TestColdRangesMigrateThenMerge(t *testing.T) {
	m := New(dynCfg(), sim.NewRand(1))
	// Phase 1: make "a" hot enough to split away "b".
	for i := 0; i < 600; i++ {
		pk := "a"
		if i%3 == 0 {
			pk = "b"
		}
		m.Record(time.Duration(i)*4*time.Millisecond, "t", pk) // 250 ops/s
	}
	if m.Snapshot("t").Ranges() < 2 {
		t.Fatal("phase 1 produced no split")
	}
	// Phase 2: traffic cools to a trickle on a third key; the cold
	// neighbours must be consolidated (migrate onto one server, then
	// merge) within a few ticks.
	var kinds []EventKind
	for i := 0; i < 40; i++ {
		at := 3*time.Second + time.Duration(i)*250*time.Millisecond
		kinds = append(kinds, kindsOf(m.Record(at, "t", "c"))...)
	}
	st := m.Stats()
	if st.Merges == 0 {
		t.Fatalf("cold ranges never merged: %+v (events %v)", st, kinds)
	}
	if got := m.Snapshot("t").Ranges(); got != 1 {
		t.Fatalf("table ends with %d ranges, want full consolidation to 1", got)
	}
}

func kindsOf(evs []Event) []EventKind {
	out := make([]EventKind, len(evs))
	for i, ev := range evs {
		out[i] = ev.Kind
	}
	return out
}

func TestScaleOutProvisionsUpToMax(t *testing.T) {
	cfg := dynCfg()
	cfg.Servers = 1
	cfg.MaxServers = 3
	m := New(cfg, sim.NewRand(1))
	// Many distinct hot keys force repeated splits; with every server
	// loaded, the master must provision up to (and not beyond) MaxServers.
	for i := 0; i < 4000; i++ {
		pk := fmt.Sprintf("k%02d", i%16)
		m.Record(time.Duration(i)*2*time.Millisecond, "t", pk)
	}
	if got := m.Servers(); got != 3 {
		t.Fatalf("servers = %d, want scale-out to the max of 3", got)
	}
}

func TestDeterministicTimeline(t *testing.T) {
	runOnce := func() []Event {
		m := New(dynCfg(), sim.NewRand(7))
		for i := 0; i < 2000; i++ {
			m.Record(time.Duration(i)*3*time.Millisecond, "t", fmt.Sprintf("k%02d", i%8))
		}
		return m.Events()
	}
	a, b := runOnce(), runOnce()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical runs diverged:\n%v\nvs\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("workload produced no structural events")
	}
}

func TestTableMapOwnerBoundaries(t *testing.T) {
	tm := &TableMap{Version: 3, starts: []string{"", "m", "t"}, owners: []int{0, 1, 2}}
	for _, tc := range []struct {
		pk   string
		want int
	}{
		{"", 0}, {"a", 0}, {"m", 1}, {"mzzz", 1}, {"t", 2}, {"zz", 2},
	} {
		if got := tm.Owner(tc.pk); got != tc.want {
			t.Errorf("Owner(%q) = %d, want %d", tc.pk, got, tc.want)
		}
	}
}

func TestStaticMasterRecordsNothing(t *testing.T) {
	m := New(Config{Servers: 4}, nil)
	if evs := m.Record(time.Second, "t", "pk"); evs != nil {
		t.Fatalf("static Record returned events %v", evs)
	}
	if st := m.Stats(); st.Splits+st.Merges+st.Migrations != 0 {
		t.Fatalf("static master mutated: %+v", st)
	}
}

func TestPromoteBumpsEveryTableAndBlacksOutRanges(t *testing.T) {
	m := New(dynCfg(), sim.NewRand(1))
	// Two tables, the first split into two ranges.
	drive(m, "orders", "hot", 300, 0, time.Second)
	drive(m, "orders", "cold", 5, time.Second, 1100*time.Millisecond)
	m.Record(1200*time.Millisecond, "orders", "hot") // tick: split
	m.Lookup("users", "u1")
	v1 := m.Snapshot("orders").Version
	v2 := m.Snapshot("users").Version

	now := 2 * time.Second
	blackout := 300 * time.Millisecond
	ranges := m.Promote(now, blackout)
	if want := m.Snapshot("orders").Ranges() + m.Snapshot("users").Ranges(); ranges != want {
		t.Fatalf("Promote touched %d ranges, want %d", ranges, want)
	}
	if got := m.Snapshot("orders").Version; got != v1+1 {
		t.Errorf("orders version %d after promote, want %d", got, v1+1)
	}
	if got := m.Snapshot("users").Version; got != v2+1 {
		t.Errorf("users version %d after promote, want %d", got, v2+1)
	}
	// Every range is blacked out until now+blackout.
	for _, probe := range []struct{ table, pk string }{
		{"orders", "hot"}, {"orders", "cold"}, {"users", "u1"},
	} {
		if _, until := m.Lookup(probe.table, probe.pk); until != now+blackout {
			t.Errorf("%s/%s unavailUntil = %v, want %v", probe.table, probe.pk, until, now+blackout)
		}
	}
	if m.Stats().Promotions != 1 {
		t.Errorf("Promotions = %d, want 1", m.Stats().Promotions)
	}
}
