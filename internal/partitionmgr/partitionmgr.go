// Package partitionmgr implements the partition master of the simulated
// table service: a versioned range-partition map per table plus a
// deterministic control loop that splits hot ranges across partition
// servers, merges cold neighbours, and migrates ranges between servers —
// the dynamic load balancing the real Azure partition layer performs and
// the paper's fixed-placement model cannot express.
//
// Everything runs on the virtual clock and the simulation's seeded PRNG:
// the master never reads wall time, so two runs at the same seed produce
// the same split/merge/migrate timeline byte for byte. A range that has
// just been moved is unavailable for MigrationBlackout (the handoff
// window); the cloud front door rejects requests for it with ServerBusy,
// and requests addressed with a stale map version get a retriable
// PartitionMoved redirect.
package partitionmgr

import (
	"fmt"
	"sort"
	"time"

	"azurebench/internal/sim"
)

// Config parameterizes the master. The zero value of the dynamic knobs is
// replaced with safe defaults by New; Dynamic false reproduces the paper's
// static first-sight round-robin placement exactly (the control loop never
// runs and no randomness is consumed).
type Config struct {
	Dynamic           bool
	Servers           int           // initial partition-server count
	MaxServers        int           // scale-out ceiling for dynamic placement
	SplitOpsPerSec    float64       // observed range rate that triggers a split
	MergeOpsPerSec    float64       // adjacent ranges both below: merge/migrate
	ControlInterval   time.Duration // control-loop tick period
	MigrationBlackout time.Duration // unavailability window of a moved range
}

// EventKind classifies a structural map change.
type EventKind int

// Structural operations the control loop performs.
const (
	Split EventKind = iota
	Merge
	Migrate
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case Split:
		return "Split"
	case Merge:
		return "Merge"
	case Migrate:
		return "Migrate"
	}
	return "?"
}

// Event records one structural change to a table's partition map.
type Event struct {
	At       time.Duration // virtual time of the control tick
	Kind     EventKind
	Table    string
	Start    string        // start key of the affected range ("" = -inf)
	SplitKey string        // Split only: first key of the new right half
	From     int           // previous owner server
	To       int           // owner after the operation
	Version  uint64        // map version after the operation
	Blackout time.Duration // handoff unavailability applied to the moved range
}

// Describe renders the event for trace tags and logs.
func (e Event) Describe() string {
	switch e.Kind {
	case Split:
		return fmt.Sprintf("%s split [%s,...) at %q srv%d->srv%d v%d", e.Table, e.Start, e.SplitKey, e.From, e.To, e.Version)
	case Merge:
		return fmt.Sprintf("%s merge [%s,...) into predecessor on srv%d v%d", e.Table, e.Start, e.To, e.Version)
	default:
		return fmt.Sprintf("%s migrate [%s,...) srv%d->srv%d v%d", e.Table, e.Start, e.From, e.To, e.Version)
	}
}

// Stats counts the master's activity.
type Stats struct {
	Splits         uint64
	Merges         uint64
	Migrations     uint64
	Redirects      uint64 // stale-map requests bounced with PartitionMoved
	HandoffRejects uint64 // requests rejected inside a migration blackout
	MapRefreshes   uint64 // client partition-map snapshot fetches
	Promotions     uint64 // failover promotions applied to this master
	Servers        int    // partition servers currently provisioned
	Ranges         int    // ranges across all tables
}

// rangeState is one contiguous key range [start, nextStart) of a table.
// ops/keys are the load window since the last control tick.
type rangeState struct {
	start        string // "" = -inf; ranges[0].start is always ""
	owner        int
	unavailUntil time.Duration
	ops          float64
	keys         map[string]float64
}

// tableState is the authoritative partition map of one table.
type tableState struct {
	name    string
	version uint64
	ranges  []*rangeState // sorted by start
}

// rangeFor returns the index and state of the range holding pk.
func (t *tableState) rangeFor(pk string) (int, *rangeState) {
	// First range with start > pk; pk belongs to its predecessor.
	// ranges[0].start == "" is never > pk, so i >= 1.
	i := sort.Search(len(t.ranges), func(i int) bool { return t.ranges[i].start > pk })
	return i - 1, t.ranges[i-1]
}

// TableMap is an immutable snapshot of one table's partition map — what a
// client caches and routes by until its TTL expires or a redirect
// invalidates it.
type TableMap struct {
	Version uint64
	starts  []string
	owners  []int
}

// Owner resolves pk to the owning server index under this snapshot.
func (m *TableMap) Owner(pk string) int {
	i := sort.SearchStrings(m.starts, pk)
	if i < len(m.starts) && m.starts[i] == pk {
		return m.owners[i]
	}
	return m.owners[i-1]
}

// Ranges returns the number of ranges in the snapshot.
func (m *TableMap) Ranges() int { return len(m.starts) }

// Master is the partition master: it owns every table's map, observes
// per-range load, and mutates placement on control ticks. It must only be
// used from the single-threaded simulation.
type Master struct {
	cfg Config
	//azlint:allow snapshotsafe(the PRNG is the environment's stream, shared at construction; sim/env's section saves and restores it)
	rand    *sim.Rand
	tables  map[string]*tableState
	order   []string // table creation order, for deterministic iteration
	servers int
	stats   Stats
	events  []Event

	lastTick time.Duration
	nextTick time.Duration
	ticked   bool

	// Static-placement state (Dynamic false): the legacy first-sight
	// round-robin map from (table|pk) to server.
	place  map[string]int
	nextRR int
}

// New builds a master. rand is only consumed by dynamic structural
// decisions (tie-breaking equally loaded target servers); it may be nil
// when Dynamic is false.
func New(cfg Config, rand *sim.Rand) *Master {
	if cfg.Servers < 1 {
		cfg.Servers = 1
	}
	if cfg.MaxServers < cfg.Servers {
		cfg.MaxServers = cfg.Servers
	}
	if cfg.ControlInterval <= 0 {
		cfg.ControlInterval = time.Second
	}
	if cfg.SplitOpsPerSec <= 0 {
		cfg.SplitOpsPerSec = 250
	}
	if cfg.MergeOpsPerSec <= 0 {
		cfg.MergeOpsPerSec = 50
	}
	return &Master{
		cfg:     cfg,
		rand:    rand,
		tables:  map[string]*tableState{},
		servers: cfg.Servers,
		place:   map[string]int{},
	}
}

// Dynamic reports whether the control loop is active.
func (m *Master) Dynamic() bool { return m.cfg.Dynamic }

// Servers returns the number of partition servers currently provisioned.
func (m *Master) Servers() int { return m.servers }

// Stats returns a snapshot of the master's counters.
func (m *Master) Stats() Stats {
	st := m.stats
	st.Servers = m.servers
	for _, name := range m.order {
		st.Ranges += len(m.tables[name].ranges)
	}
	if !m.cfg.Dynamic {
		st.Ranges = len(m.place)
	}
	return st
}

// Events returns the structural-change timeline in occurrence order.
func (m *Master) Events() []Event {
	return append([]Event(nil), m.events...)
}

// NoteRedirect counts a stale-map request bounced by the front door.
func (m *Master) NoteRedirect() { m.stats.Redirects++ }

// NoteHandoffReject counts a request rejected inside a blackout window.
func (m *Master) NoteHandoffReject() { m.stats.HandoffRejects++ }

// Place is the static-placement path: each (table, partition key) pins to
// a server round-robin on first sight, exactly the paper's model.
func (m *Master) Place(table, pk string) int {
	key := table + "|" + pk
	idx, ok := m.place[key]
	if !ok {
		idx = m.nextRR % m.cfg.Servers
		m.nextRR++
		m.place[key] = idx
	}
	return idx
}

// Placements returns a copy of the static placement map (tests).
func (m *Master) Placements() map[string]int {
	out := make(map[string]int, len(m.place))
	for k, v := range m.place {
		out[k] = v
	}
	return out
}

// table returns (creating on first sight) the authoritative map of name.
// A new table starts as one full-keyspace range on the next round-robin
// server, so an idle dynamic cloud places exactly like the static one.
func (m *Master) table(name string) *tableState {
	t := m.tables[name]
	if t == nil {
		t = &tableState{
			name:    name,
			version: 1,
			ranges: []*rangeState{{
				owner: m.nextRR % m.cfg.Servers,
				keys:  map[string]float64{},
			}},
		}
		m.nextRR++
		m.tables[name] = t
		m.order = append(m.order, name)
	}
	return t
}

// Lookup returns the authoritative owner and blackout deadline for pk —
// what the addressed partition server checks against the client's routing
// decision.
func (m *Master) Lookup(table, pk string) (owner int, unavailUntil time.Duration) {
	t := m.table(table)
	_, r := t.rangeFor(pk)
	return r.owner, r.unavailUntil
}

// Promote executes the map-side half of a geo-failover on this (secondary)
// master: every table's map version is bumped and every range enters a
// handoff blackout until now+blackout, modelling the ownership handoff as
// the promoted region re-seats its partition servers. Clients converge
// exactly as they do for an ordinary migration — stale map versions bounce
// with PartitionMoved, blackout hits retry as handoff rejects — so no new
// client protocol is needed. Returns the number of ranges promoted.
func (m *Master) Promote(now time.Duration, blackout time.Duration) int {
	ranges := 0
	for _, name := range m.order {
		t := m.tables[name]
		t.version++
		for _, r := range t.ranges {
			until := now + blackout
			if until > r.unavailUntil {
				r.unavailUntil = until
			}
			ranges++
		}
	}
	m.stats.Promotions++
	return ranges
}

// Snapshot returns an immutable copy of the table's current map — the
// "get partition map" call a client makes when its cache is cold, expired
// or invalidated.
func (m *Master) Snapshot(table string) *TableMap {
	t := m.table(table)
	m.stats.MapRefreshes++
	tm := &TableMap{
		Version: t.version,
		starts:  make([]string, len(t.ranges)),
		owners:  make([]int, len(t.ranges)),
	}
	for i, r := range t.ranges {
		tm.starts[i] = r.start
		tm.owners[i] = r.owner
	}
	return tm
}

// Record observes one request for (table, pk) at virtual time now and
// returns the structural events of the control tick it may have
// triggered (nil on ordinary requests). Only the dynamic master records
// load; the static master is inert here.
func (m *Master) Record(now time.Duration, table, pk string) []Event {
	if !m.cfg.Dynamic {
		return nil
	}
	t := m.table(table)
	_, r := t.rangeFor(pk)
	r.ops++
	r.keys[pk]++
	if !m.ticked {
		m.ticked = true
		m.lastTick = now
		m.nextTick = now + m.cfg.ControlInterval
		return nil
	}
	if now < m.nextTick {
		return nil
	}
	evs := m.tick(now)
	m.lastTick = now
	m.nextTick = now + m.cfg.ControlInterval
	return evs
}

// tick runs one control-loop pass: per table (in creation order, at most
// one structural operation of each kind) split the hottest range, merge
// one cold same-server pair, and migrate one cold range next to a
// differently-owned cold neighbour so a later tick can merge them. The
// load windows are then reset.
func (m *Master) tick(now time.Duration) []Event {
	window := (now - m.lastTick).Seconds()
	if window <= 0 {
		return nil
	}
	load := m.serverLoad()
	var evs []Event
	for _, name := range m.order {
		t := m.tables[name]
		if ev, ok := m.splitHot(now, t, window, &load); ok {
			evs = append(evs, ev)
		}
		if ev, ok := m.mergeCold(now, t, window); ok {
			evs = append(evs, ev)
		}
		if ev, ok := m.migrateCold(now, t, window, load); ok {
			evs = append(evs, ev)
		}
	}
	for _, name := range m.order {
		for _, r := range m.tables[name].ranges {
			r.ops = 0
			r.keys = map[string]float64{}
		}
	}
	m.events = append(m.events, evs...)
	return evs
}

// serverLoad sums this window's per-range request counts by owner.
func (m *Master) serverLoad() []float64 {
	load := make([]float64, m.servers)
	for _, name := range m.order {
		for _, r := range m.tables[name].ranges {
			load[r.owner] += r.ops
		}
	}
	return load
}

// splitHot splits the table's hottest over-threshold range at its
// weighted median key, placing the new right half on the least-loaded
// server (provisioning a fresh one when every existing server already
// carries load and capacity remains). The moved half enters a handoff
// blackout.
func (m *Master) splitHot(now time.Duration, t *tableState, window float64, loadp *[]float64) (Event, bool) {
	hot := -1
	var hotOps float64
	for i, r := range t.ranges {
		if len(r.keys) >= 2 && r.ops > hotOps {
			hot, hotOps = i, r.ops
		}
	}
	if hot < 0 || hotOps/window < m.cfg.SplitOpsPerSec {
		return Event{}, false
	}
	r := t.ranges[hot]
	key := splitPoint(r)
	if key == "" {
		return Event{}, false
	}
	to := m.targetServer(loadp, r.owner)
	load := *loadp
	newR := &rangeState{
		start:        key,
		owner:        to,
		unavailUntil: now + m.cfg.MigrationBlackout,
		keys:         map[string]float64{},
	}
	for k, n := range r.keys {
		if k >= key {
			newR.keys[k] = n
			newR.ops += n
		}
	}
	for k := range newR.keys {
		delete(r.keys, k)
	}
	r.ops -= newR.ops
	load[r.owner] -= newR.ops
	load[to] += newR.ops
	t.ranges = append(t.ranges, nil)
	copy(t.ranges[hot+2:], t.ranges[hot+1:])
	t.ranges[hot+1] = newR
	t.version++
	m.stats.Splits++
	return Event{
		At: now, Kind: Split, Table: t.name, Start: r.start, SplitKey: key,
		From: r.owner, To: to, Version: t.version, Blackout: m.cfg.MigrationBlackout,
	}, true
}

// splitPoint picks the weighted median of the range's window keys,
// advanced past the first key so both halves are non-empty. With one
// dominant hot key the split isolates it on its own range.
func splitPoint(r *rangeState) string {
	keys := make([]string, 0, len(r.keys))
	for k := range r.keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) < 2 {
		return ""
	}
	half := r.ops / 2
	var cum float64
	for _, k := range keys {
		cum += r.keys[k]
		if cum >= half && k > keys[0] {
			return k
		}
	}
	return keys[len(keys)-1]
}

// targetServer picks the least-loaded server other than exclude for a
// moved range. When every candidate already carries window load and
// capacity remains, a new server is provisioned (scale-out); exact load
// ties break through the seeded PRNG.
func (m *Master) targetServer(load *[]float64, exclude int) int {
	best := -1.0
	var ties []int
	for i := 0; i < m.servers; i++ {
		if i == exclude {
			continue
		}
		l := (*load)[i]
		switch {
		case len(ties) == 0 || l < best:
			best = l
			ties = ties[:0]
			ties = append(ties, i)
		case l == best:
			ties = append(ties, i)
		}
	}
	if (len(ties) == 0 || best > 0) && m.servers < m.cfg.MaxServers {
		idx := m.servers
		m.servers++
		*load = append(*load, 0)
		return idx
	}
	switch len(ties) {
	case 0:
		return exclude
	case 1:
		return ties[0]
	}
	return ties[m.rand.Intn(len(ties))]
}

// mergeCold merges the first adjacent pair of cold ranges sharing an
// owner (both below the merge threshold, neither mid-handoff) — no data
// moves, so no blackout.
func (m *Master) mergeCold(now time.Duration, t *tableState, window float64) (Event, bool) {
	for i := 0; i+1 < len(t.ranges); i++ {
		a, b := t.ranges[i], t.ranges[i+1]
		if a.owner != b.owner || !m.cold(a, b, now, window) {
			continue
		}
		a.ops += b.ops
		for k, n := range b.keys {
			a.keys[k] = n
		}
		t.ranges = append(t.ranges[:i+1], t.ranges[i+2:]...)
		t.version++
		m.stats.Merges++
		return Event{
			At: now, Kind: Merge, Table: t.name, Start: b.start,
			From: b.owner, To: a.owner, Version: t.version,
		}, true
	}
	return Event{}, false
}

// migrateCold moves the first cold range whose cold predecessor lives on
// a different server onto that server, paying the handoff blackout, so a
// later tick can merge the pair.
func (m *Master) migrateCold(now time.Duration, t *tableState, window float64, load []float64) (Event, bool) {
	for i := 0; i+1 < len(t.ranges); i++ {
		a, b := t.ranges[i], t.ranges[i+1]
		if a.owner == b.owner || !m.cold(a, b, now, window) {
			continue
		}
		from := b.owner
		b.owner = a.owner
		b.unavailUntil = now + m.cfg.MigrationBlackout
		load[from] -= b.ops
		load[a.owner] += b.ops
		t.version++
		m.stats.Migrations++
		return Event{
			At: now, Kind: Migrate, Table: t.name, Start: b.start,
			From: from, To: a.owner, Version: t.version, Blackout: m.cfg.MigrationBlackout,
		}, true
	}
	return Event{}, false
}

// cold reports whether both ranges are below the merge threshold and
// outside any handoff blackout.
func (m *Master) cold(a, b *rangeState, now time.Duration, window float64) bool {
	return a.ops/window < m.cfg.MergeOpsPerSec &&
		b.ops/window < m.cfg.MergeOpsPerSec &&
		now >= a.unavailUntil && now >= b.unavailUntil
}
