// Package odata implements the JSON wire representation of table entities
// shared by the REST emulator and the client SDK: property values carry
// EDM type annotations ("Prop@odata.type": "Edm.Int64") the way the Azure
// Table service serialises them.
package odata

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"azurebench/internal/payload"
	"azurebench/internal/storecommon"
	"azurebench/internal/tablestore"
)

// timestampFormat is the wire format of Edm.DateTime values.
const timestampFormat = time.RFC3339Nano

// EncodeEntity renders an entity as a JSON object.
func EncodeEntity(e *tablestore.Entity) ([]byte, error) {
	obj := map[string]any{
		"PartitionKey": e.PartitionKey,
		"RowKey":       e.RowKey,
	}
	if !e.Timestamp.IsZero() {
		obj["Timestamp"] = e.Timestamp.UTC().Format(timestampFormat)
	}
	if e.ETag != "" {
		obj["odata.etag"] = e.ETag
	}
	for name, v := range e.Props {
		switch v.Type {
		case tablestore.TypeString:
			obj[name] = v.S
		case tablestore.TypeBool:
			obj[name] = v.B
		case tablestore.TypeInt32:
			obj[name] = v.I
		case tablestore.TypeDouble:
			obj[name] = v.F
			obj[name+"@odata.type"] = "Edm.Double"
		case tablestore.TypeInt64:
			obj[name] = strconv.FormatInt(v.I, 10)
			obj[name+"@odata.type"] = "Edm.Int64"
		case tablestore.TypeDateTime:
			obj[name] = v.T.UTC().Format(timestampFormat)
			obj[name+"@odata.type"] = "Edm.DateTime"
		case tablestore.TypeGUID:
			obj[name] = v.S
			obj[name+"@odata.type"] = "Edm.Guid"
		case tablestore.TypeBinary:
			obj[name] = base64.StdEncoding.EncodeToString(v.Bin.Materialize())
			obj[name+"@odata.type"] = "Edm.Binary"
		}
	}
	return json.Marshal(obj)
}

// DecodeEntity parses a JSON object into an entity.
func DecodeEntity(raw []byte) (*tablestore.Entity, error) {
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(raw, &obj); err != nil {
		return nil, storecommon.Errf(storecommon.CodeInvalidInput, 400, "bad entity JSON: %v", err)
	}
	e := &tablestore.Entity{Props: map[string]tablestore.Value{}}
	types := map[string]string{}
	for k, v := range obj {
		if name, ok := strings.CutSuffix(k, "@odata.type"); ok {
			var t string
			if err := json.Unmarshal(v, &t); err != nil {
				return nil, storecommon.Errf(storecommon.CodeInvalidInput, 400, "bad type annotation for %s", name)
			}
			types[name] = t
		}
	}
	for k, v := range obj {
		if strings.Contains(k, "@odata.type") || k == "odata.etag" {
			continue
		}
		switch k {
		case "PartitionKey":
			if err := json.Unmarshal(v, &e.PartitionKey); err != nil {
				return nil, badProp(k, err)
			}
		case "RowKey":
			if err := json.Unmarshal(v, &e.RowKey); err != nil {
				return nil, badProp(k, err)
			}
		case "Timestamp":
			var s string
			if err := json.Unmarshal(v, &s); err != nil {
				return nil, badProp(k, err)
			}
			t, err := time.Parse(timestampFormat, s)
			if err != nil {
				return nil, badProp(k, err)
			}
			e.Timestamp = t
		default:
			val, err := decodeValue(v, types[k])
			if err != nil {
				return nil, badProp(k, err)
			}
			e.Props[k] = val
		}
	}
	if etag, ok := obj["odata.etag"]; ok {
		_ = json.Unmarshal(etag, &e.ETag)
	}
	return e, nil
}

func decodeValue(raw json.RawMessage, edmType string) (tablestore.Value, error) {
	switch edmType {
	case "Edm.Int64":
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return tablestore.Value{}, err
		}
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return tablestore.Value{}, err
		}
		return tablestore.Int64(n), nil
	case "Edm.Double":
		var f float64
		if err := json.Unmarshal(raw, &f); err != nil {
			return tablestore.Value{}, err
		}
		return tablestore.Double(f), nil
	case "Edm.DateTime":
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return tablestore.Value{}, err
		}
		t, err := time.Parse(timestampFormat, s)
		if err != nil {
			return tablestore.Value{}, err
		}
		return tablestore.DateTime(t), nil
	case "Edm.Guid":
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return tablestore.Value{}, err
		}
		return tablestore.GUID(s), nil
	case "Edm.Binary":
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return tablestore.Value{}, err
		}
		b, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			return tablestore.Value{}, err
		}
		return tablestore.Binary(payload.Bytes(b)), nil
	case "", "Edm.String", "Edm.Boolean", "Edm.Int32":
		// Untyped JSON: infer from the JSON value itself.
		var any any
		if err := json.Unmarshal(raw, &any); err != nil {
			return tablestore.Value{}, err
		}
		switch v := any.(type) {
		case string:
			return tablestore.String(v), nil
		case bool:
			return tablestore.Bool(v), nil
		case float64:
			// JSON numbers without annotation are Int32 when integral
			// (Azure's convention), Double otherwise.
			if v == float64(int64(v)) && v >= -1<<31 && v < 1<<31 {
				return tablestore.Int32(int32(v)), nil
			}
			return tablestore.Double(v), nil
		default:
			return tablestore.Value{}, fmt.Errorf("unsupported JSON value %T", v)
		}
	default:
		return tablestore.Value{}, fmt.Errorf("unsupported EDM type %q", edmType)
	}
}

func badProp(name string, err error) error {
	return storecommon.Errf(storecommon.CodeInvalidInput, 400, "property %s: %v", name, err)
}
