package odata

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"azurebench/internal/payload"
	"azurebench/internal/tablestore"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := &tablestore.Entity{
		PartitionKey: "p",
		RowKey:       "r",
		Timestamp:    time.Date(2012, 5, 21, 1, 2, 3, 0, time.UTC),
		ETag:         `W/"tag"`,
		Props: map[string]tablestore.Value{
			"S":  tablestore.String("text"),
			"B":  tablestore.Bool(true),
			"I":  tablestore.Int32(-7),
			"L":  tablestore.Int64(1 << 40),
			"D":  tablestore.Double(2.5),
			"T":  tablestore.DateTime(time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)),
			"G":  tablestore.GUID("0f8fad5b-d9cb-469f-a165-70867728950e"),
			"BB": tablestore.Binary(payload.Synthetic(1, 33)),
		},
	}
	raw, err := EncodeEntity(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeEntity(raw)
	if err != nil {
		t.Fatal(err)
	}
	if out.PartitionKey != in.PartitionKey || out.RowKey != in.RowKey {
		t.Fatalf("keys = %s/%s", out.PartitionKey, out.RowKey)
	}
	if !out.Timestamp.Equal(in.Timestamp) || out.ETag != in.ETag {
		t.Fatalf("system props = %v / %q", out.Timestamp, out.ETag)
	}
	for name, want := range in.Props {
		if !out.Props[name].Equal(want) {
			t.Errorf("prop %s = %#v, want %#v", name, out.Props[name], want)
		}
	}
}

func TestDecodeUntypedNumbers(t *testing.T) {
	e, err := DecodeEntity([]byte(`{"PartitionKey":"p","RowKey":"r","Small":5,"Frac":1.5,"Big":3000000000}`))
	if err != nil {
		t.Fatal(err)
	}
	if e.Props["Small"].Type != tablestore.TypeInt32 || e.Props["Small"].I != 5 {
		t.Fatalf("Small = %#v", e.Props["Small"])
	}
	if e.Props["Frac"].Type != tablestore.TypeDouble || e.Props["Frac"].F != 1.5 {
		t.Fatalf("Frac = %#v", e.Props["Frac"])
	}
	// Integral but out of int32 range: promoted to Double (no annotation).
	if e.Props["Big"].Type != tablestore.TypeDouble {
		t.Fatalf("Big = %#v", e.Props["Big"])
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []string{
		`not json`,
		`{"PartitionKey":1}`,
		`{"PartitionKey":"p","RowKey":"r","X":"zzz","X@odata.type":"Edm.Int64"}`,
		`{"PartitionKey":"p","RowKey":"r","X":"zz","X@odata.type":"Edm.Binary"}`,
		`{"PartitionKey":"p","RowKey":"r","X":"nope","X@odata.type":"Edm.DateTime"}`,
		`{"PartitionKey":"p","RowKey":"r","X":[1,2],"X@odata.type":""}`,
	}
	for _, src := range bad {
		if _, err := DecodeEntity([]byte(src)); err == nil {
			t.Errorf("DecodeEntity(%q) accepted", src)
		}
	}
}

func TestPropertyRoundTripInt64(t *testing.T) {
	f := func(v int64, pk, rk string) bool {
		pk = sanitizeKey(pk)
		rk = sanitizeKey(rk)
		in := &tablestore.Entity{PartitionKey: pk, RowKey: rk,
			Props: map[string]tablestore.Value{"V": tablestore.Int64(v)}}
		raw, err := EncodeEntity(in)
		if err != nil {
			return false
		}
		out, err := DecodeEntity(raw)
		if err != nil {
			return false
		}
		return out.Props["V"].Equal(in.Props["V"]) && out.PartitionKey == pk && out.RowKey == rk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func sanitizeKey(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 0x20 && r != '/' && r != '\\' && r != '#' && r != '?' && r != 0x7f {
			b.WriteRune(r)
		}
	}
	if b.Len() > 512 {
		return b.String()[:512]
	}
	return b.String()
}
