package odata

import (
	"bytes"
	"testing"
	"time"

	"azurebench/internal/payload"
	"azurebench/internal/tablestore"
)

// FuzzDecodeEntity feeds arbitrary bytes to the wire decoder and checks
// the canonical-form invariant on everything it accepts: encoding a
// decoded entity must reach a fixed point in one step. DecodeEntity is
// the REST emulator's parse path for client-supplied JSON, so it must
// never panic, and whatever it accepts must survive a store/reload
// round-trip byte-for-byte (entities are persisted in encoded form).
func FuzzDecodeEntity(f *testing.F) {
	// Seed with one entity exercising every EDM type, plus hand-written
	// wire forms covering the inference and annotation paths.
	e := &tablestore.Entity{
		PartitionKey: "p1",
		RowKey:       "r1",
		Timestamp:    time.Date(2012, 7, 14, 3, 30, 0, 123456789, time.UTC),
		ETag:         `W/"datetime'2012-07-14T03%3A30%3A00Z'"`,
		Props: map[string]tablestore.Value{
			"s":   tablestore.String("hello"),
			"b":   tablestore.Bool(true),
			"i32": tablestore.Int32(-7),
			"i64": tablestore.Int64(1 << 40),
			"f":   tablestore.Double(3.5),
			"t":   tablestore.DateTime(time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)),
			"g":   tablestore.GUID("c9da6455-213d-42c9-9a79-3e9149a57833"),
			"bin": tablestore.Binary(payload.Bytes([]byte{0x00, 0xff, 0x10})),
		},
	}
	seed, err := EncodeEntity(e)
	if err != nil {
		f.Fatalf("encoding seed entity: %v", err)
	}
	f.Add(seed)
	f.Add([]byte(`{"PartitionKey":"p","RowKey":"r"}`))
	f.Add([]byte(`{"PartitionKey":"p","RowKey":"r","n":12,"x":1e300}`))
	f.Add([]byte(`{"PartitionKey":"p","RowKey":"r","n":"9","n@odata.type":"Edm.Int64"}`))
	f.Add([]byte(`{"PartitionKey":"p","RowKey":"r","Timestamp":"2020-02-29T23:59:59.5Z"}`))
	f.Add([]byte(`{"odata.etag":"abc","bin":"AAE=","bin@odata.type":"Edm.Binary"}`))
	f.Add([]byte(`{"bad@odata.type":"Edm.Nope","bad":1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeEntity(data)
		if err != nil {
			return // rejected input: only the no-panic guarantee applies
		}
		raw, err := EncodeEntity(e)
		if err != nil {
			t.Fatalf("decoded entity does not re-encode: %v\ninput: %q", err, data)
		}
		e2, err := DecodeEntity(raw)
		if err != nil {
			t.Fatalf("encoder output does not decode: %v\nencoded: %q", err, raw)
		}
		raw2, err := EncodeEntity(e2)
		if err != nil {
			t.Fatalf("re-encoding round-tripped entity: %v", err)
		}
		if !bytes.Equal(raw, raw2) {
			t.Fatalf("encoding is not canonical after one round-trip:\nfirst:  %s\nsecond: %s\ninput:  %q", raw, raw2, data)
		}
	})
}
