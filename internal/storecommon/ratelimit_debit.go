package storecommon

import "time"

// Debit removes n tokens unconditionally, allowing the balance to go
// negative. It models post-hoc metering (e.g. response bandwidth that is
// only known after the request was admitted): future Allow calls are
// rejected until the deficit refills.
func (l *RateLimiter) Debit(now time.Duration, n float64) {
	l.refill(now)
	l.tokens -= n
}
