package storecommon

import "time"

// Size units.
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
	TB = 1 << 40
)

// Service limits of the 2011/2012-era Windows Azure storage service, as
// described in the paper (§IV) and the contemporaneous documentation. The
// engines enforce the structural limits; the simulated cloud enforces the
// rate ("scalability") targets.
const (
	// Blob service.
	MaxBlockSize         = 4 * MB   // one PutBlock body
	MaxSingleShotBlob    = 64 * MB  // block blob uploadable as one entity
	MaxBlocksPerBlob     = 50_000   // committed blocks per block blob
	MaxBlockBlobSize     = 200 * GB // 50,000 * 4 MB
	MaxPageBlobSize      = 1 * TB
	PageAlignment        = 512    // page offsets/lengths must be multiples
	MaxPageWrite         = 4 * MB // one PutPage body
	PerBlobThroughputBps = 60 * MB

	// Queue service.
	MaxMessageSize    = 64 * KB // wire size including metadata
	MaxMessagePayload = 49_152  // 48 KB of usable payload (per the paper)
	QueueOpsPerSec    = 500     // per queue (single partition)

	// Table service.
	MaxEntitySize       = 1 * MB
	MaxEntityProperties = 255
	PartitionOpsPerSec  = 500 // per table partition
	MaxBatchOperations  = 100 // entity-group transaction size
	MaxBatchPayload     = 4 * MB
	MaxQueryPageSize    = 1000 // entities per query page (continuation after)

	// Account-wide scalability targets.
	AccountOpsPerSec    = 5000
	AccountBandwidthBps = 3 * GB
	AccountCapacity     = 100 * TB

	// Replication: Azure keeps three replicas with strong consistency.
	Replicas = 3
)

// MaxMessageTTL is the maximum (and default, in our engine) queue-message
// time-to-live. It was two hours in early Azure APIs; the October 2011 API
// — the one the paper benchmarks — extended it to one week.
const MaxMessageTTL = 7 * 24 * time.Hour

// DefaultVisibilityTimeout is applied when GetMessage does not specify one.
const DefaultVisibilityTimeout = 30 * time.Second

// MaxVisibilityTimeout bounds the visibility timeout of a dequeued message.
const MaxVisibilityTimeout = 7 * 24 * time.Hour
