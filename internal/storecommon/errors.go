// Package storecommon holds the pieces shared by the three storage engines:
// the Azure-style error model, the documented service limits (“scalability
// targets”), resource-naming validation, ETag generation and token-bucket
// rate limiting.
package storecommon

import (
	"errors"
	"fmt"
)

// Code is an Azure storage error code, matching the REST error-code strings
// of the 2011-era service.
type Code string

// Error codes used across the services.
const (
	CodeServerBusy              Code = "ServerBusy"
	CodeInternalError           Code = "InternalError"
	CodeInvalidInput            Code = "InvalidInput"
	CodeOutOfRangeInput         Code = "OutOfRangeInput"
	CodeResourceNotFound        Code = "ResourceNotFound"
	CodeResourceAlreadyExists   Code = "ResourceAlreadyExists"
	CodeConditionNotMet         Code = "ConditionNotMet"
	CodeContainerNotFound       Code = "ContainerNotFound"
	CodeContainerAlreadyExists  Code = "ContainerAlreadyExists"
	CodeBlobNotFound            Code = "BlobNotFound"
	CodeBlobAlreadyExists       Code = "BlobAlreadyExists"
	CodeInvalidBlockID          Code = "InvalidBlockId"
	CodeInvalidBlockList        Code = "InvalidBlockList"
	CodeInvalidPageRange        Code = "InvalidPageRange"
	CodeBlockCountExceedsLimit  Code = "BlockCountExceedsLimit"
	CodeRequestBodyTooLarge     Code = "RequestBodyTooLarge"
	CodeLeaseAlreadyPresent     Code = "LeaseAlreadyPresent"
	CodeLeaseIDMissing          Code = "LeaseIdMissing"
	CodeLeaseIDMismatch         Code = "LeaseIdMismatchWithLeaseOperation"
	CodeLeaseNotPresent         Code = "LeaseNotPresentWithLeaseOperation"
	CodeQueueNotFound           Code = "QueueNotFound"
	CodeQueueAlreadyExists      Code = "QueueAlreadyExists"
	CodeMessageNotFound         Code = "MessageNotFound"
	CodeMessageTooLarge         Code = "MessageTooLarge"
	CodePopReceiptMismatch      Code = "PopReceiptMismatch"
	CodeInvalidVisibility       Code = "InvalidVisibilityTimeout"
	CodeTableNotFound           Code = "TableNotFound"
	CodeTableAlreadyExists      Code = "TableAlreadyExists"
	CodeEntityNotFound          Code = "EntityNotFound"
	CodeEntityAlreadyExists     Code = "EntityAlreadyExists"
	CodeEntityTooLarge          Code = "EntityTooLarge"
	CodePropertyLimitExceeded   Code = "TooManyProperties"
	CodeUpdateConditionNotMet   Code = "UpdateConditionNotSatisfied"
	CodeInvalidQuery            Code = "InvalidQuery"
	CodeAccountBandwidthLimit   Code = "AccountBandwidthExceeded"
	CodeOperationTimedOut       Code = "OperationTimedOut"
	CodeInvalidResourceName     Code = "InvalidResourceName"
	CodeOutOfCapacity           Code = "InsufficientAccountPermissions"
	CodeBatchPartitionMismatch  Code = "CommandsInBatchActOnDifferentPartitions"
	CodeBatchTooManyOperations  Code = "InvalidNumberOfBatchOperations"
	CodeBatchDuplicateRowKey    Code = "InvalidDuplicateRow"
	CodeSnapshotNotFound        Code = "SnapshotNotFound"
	CodeInstanceUnavailable     Code = "RoleInstanceUnavailable"
	CodeUnsupportedHTTPVerb     Code = "UnsupportedHttpVerb"
	CodeMissingRequiredHeader   Code = "MissingRequiredHeader"
	CodeAuthenticationFailed    Code = "AuthenticationFailed"
	CodeAccountTransactionLimit Code = "AccountTransactionRateExceeded"

	// Fault-model codes (package faults). ServerUnavailable is returned
	// while a partition server is inside an unavailability window;
	// ConnectionReset is a transport-level failure (the TCP connection died
	// mid-transfer, so no HTTP status ever arrived — Status is 0).
	CodeServerUnavailable Code = "ServerUnavailable"
	CodeConnectionReset   Code = "ConnectionReset"

	// Partition-map protocol code (package partitionmgr): the addressed
	// partition server no longer owns the key's range. The client must
	// refresh its cached partition map and reissue — transient by
	// definition, since the authoritative map always has an owner.
	CodePartitionMoved Code = "PartitionMoved"
)

// Error is the storage error type surfaced by every engine and service
// operation. Status carries the HTTP status the REST layer maps it to.
type Error struct {
	Code    Code
	Status  int
	Message string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s (%d): %s", e.Code, e.Status, e.Message)
}

// Errf builds an *Error with a formatted message.
func Errf(code Code, status int, format string, args ...any) *Error {
	return &Error{Code: code, Status: status, Message: fmt.Sprintf(format, args...)}
}

// CodeOf extracts the storage error code from err, or "" if err is not a
// storage error.
func CodeOf(err error) Code {
	var se *Error
	if errors.As(err, &se) {
		return se.Code
	}
	return ""
}

// StatusOf extracts the HTTP status from err, or 500 for unknown errors and
// 0 for nil.
func StatusOf(err error) int {
	if err == nil {
		return 0
	}
	var se *Error
	if errors.As(err, &se) {
		return se.Status
	}
	return 500
}

// IsServerBusy reports whether err is a throttle rejection (ServerBusy or
// one of the account-level rate errors). Clients are expected to back off
// and retry, which is exactly what the paper's benchmark does (sleep one
// second, retry).
func IsServerBusy(err error) bool {
	switch CodeOf(err) {
	case CodeServerBusy, CodeAccountTransactionLimit, CodeAccountBandwidthLimit:
		return true
	}
	return false
}

// IsTransient reports whether err is a transient infrastructure fault —
// a timed-out request, a 500 from a partition server, a dropped
// connection, or a server inside an unavailability window. Transient
// faults are expected to clear on their own; clients should retry with
// backoff. Throttle rejections (IsServerBusy) are deliberately excluded:
// they signal overload, not failure, and carry their own retry guidance.
func IsTransient(err error) bool {
	switch CodeOf(err) {
	case CodeInternalError, CodeOperationTimedOut, CodeConnectionReset,
		CodeServerUnavailable, CodeInstanceUnavailable, CodePartitionMoved:
		return true
	}
	return false
}

// IsRetriable reports whether a client may safely re-issue the operation:
// either a throttle rejection (back off per the scalability targets) or a
// transient fault (back off exponentially). Errors that reflect request
// or state problems — not-found, conflicts, precondition failures,
// validation errors — are not retriable: reissuing cannot succeed.
func IsRetriable(err error) bool {
	return IsServerBusy(err) || IsTransient(err)
}

// IsNotFound reports whether err denotes a missing resource of any kind.
func IsNotFound(err error) bool {
	switch CodeOf(err) {
	case CodeResourceNotFound, CodeContainerNotFound, CodeBlobNotFound,
		CodeQueueNotFound, CodeMessageNotFound, CodeTableNotFound,
		CodeEntityNotFound, CodeSnapshotNotFound:
		return true
	}
	return false
}

// IsConflict reports whether err denotes an already-existing resource.
func IsConflict(err error) bool {
	switch CodeOf(err) {
	case CodeResourceAlreadyExists, CodeContainerAlreadyExists,
		CodeBlobAlreadyExists, CodeQueueAlreadyExists,
		CodeTableAlreadyExists, CodeEntityAlreadyExists:
		return true
	}
	return false
}

// IsPreconditionFailed reports whether err is an ETag/condition failure.
func IsPreconditionFailed(err error) bool {
	switch CodeOf(err) {
	case CodeConditionNotMet, CodeUpdateConditionNotMet, CodePopReceiptMismatch:
		return true
	}
	return false
}
