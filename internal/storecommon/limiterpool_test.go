package storecommon

import (
	"fmt"
	"testing"
	"time"
)

func TestLimiterPoolIdentityWithinHorizon(t *testing.T) {
	p := NewLimiterPool(100, 50)
	a := p.Get(0, "k")
	if b := p.Get(p.Horizon()/2, "k"); b != a {
		t.Fatal("limiter recreated before the horizon elapsed")
	}
	if p.Peek("k") != a || p.Peek("other") != nil {
		t.Fatal("Peek wrong")
	}
}

func TestLimiterPoolEvictsIdleAfterHorizon(t *testing.T) {
	p := NewLimiterPool(100, 50)
	a := p.Get(0, "k")
	a.Allow(0, 50) // drain the bucket
	// Two horizons later the idle limiter must have been swept, and its
	// replacement is a full bucket — exactly what the drained one would
	// have refilled to.
	now := 2 * p.Horizon()
	b := p.Get(now, "k")
	if b == a {
		t.Fatal("idle limiter not evicted after the horizon")
	}
	if got := b.Tokens(now); got != 50 {
		t.Fatalf("fresh limiter has %v tokens, want full burst 50", got)
	}
}

func TestLimiterPoolStaysBounded(t *testing.T) {
	p := NewLimiterPool(500, 50)
	// A million distinct keys, one touch each, spread over virtual time:
	// the map must stay bounded by the keys touched within one horizon,
	// not grow with the total key population.
	step := p.Horizon() / 1000
	maxLen := 0
	for i := 0; i < 100000; i++ {
		p.Get(time.Duration(i)*step, fmt.Sprintf("key-%d", i))
		if p.Len() > maxLen {
			maxLen = p.Len()
		}
	}
	if maxLen > 2100 {
		t.Fatalf("pool grew to %d entries; eviction is not bounding it", maxLen)
	}
	if p.Len() == 0 {
		t.Fatal("pool empty — eviction is deleting live entries")
	}
}

func TestLimiterPoolHorizonCoversRefill(t *testing.T) {
	// burst/rate = 10s refill: the horizon must be at least that, so an
	// evicted bucket can never come back fuller than it would have been.
	p := NewLimiterPool(5, 50)
	if p.Horizon() < 10*time.Second {
		t.Fatalf("horizon %v shorter than the %v refill time", p.Horizon(), 10*time.Second)
	}
	if q := NewLimiterPool(500, 50); q.Horizon() < time.Second {
		t.Fatalf("horizon floor missing: %v", q.Horizon())
	}
}

func TestLimiterPoolNilSafeReads(t *testing.T) {
	var p *LimiterPool
	if p.Peek("k") != nil || p.Len() != 0 {
		t.Fatal("nil pool reads not safe")
	}
}

func TestLimiterPoolBadParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero rate")
		}
	}()
	NewLimiterPool(0, 1)
}
