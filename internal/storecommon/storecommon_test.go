package storecommon

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestErrorFormatting(t *testing.T) {
	err := Errf(CodeBlobNotFound, 404, "blob %q missing", "x")
	want := `BlobNotFound (404): blob "x" missing`
	if err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
}

func TestCodeOfAndStatusOf(t *testing.T) {
	err := fmt.Errorf("wrapped: %w", Errf(CodeServerBusy, 503, "busy"))
	if CodeOf(err) != CodeServerBusy {
		t.Fatalf("CodeOf = %q", CodeOf(err))
	}
	if StatusOf(err) != 503 {
		t.Fatalf("StatusOf = %d", StatusOf(err))
	}
	if CodeOf(errors.New("plain")) != "" {
		t.Fatal("CodeOf(plain) != \"\"")
	}
	if StatusOf(errors.New("plain")) != 500 {
		t.Fatal("StatusOf(plain) != 500")
	}
	if StatusOf(nil) != 0 {
		t.Fatal("StatusOf(nil) != 0")
	}
}

func TestErrorPredicates(t *testing.T) {
	cases := []struct {
		code                              Code
		busy, notFound, conflict, precond bool
	}{
		{CodeServerBusy, true, false, false, false},
		{CodeAccountTransactionLimit, true, false, false, false},
		{CodeAccountBandwidthLimit, true, false, false, false},
		{CodeBlobNotFound, false, true, false, false},
		{CodeQueueNotFound, false, true, false, false},
		{CodeEntityNotFound, false, true, false, false},
		{CodeContainerAlreadyExists, false, false, true, false},
		{CodeEntityAlreadyExists, false, false, true, false},
		{CodeConditionNotMet, false, false, false, true},
		{CodeUpdateConditionNotMet, false, false, false, true},
		{CodePopReceiptMismatch, false, false, false, true},
		{CodeInvalidInput, false, false, false, false},
	}
	for _, c := range cases {
		err := Errf(c.code, 400, "x")
		if IsServerBusy(err) != c.busy {
			t.Errorf("IsServerBusy(%s) = %v", c.code, !c.busy)
		}
		if IsNotFound(err) != c.notFound {
			t.Errorf("IsNotFound(%s) = %v", c.code, !c.notFound)
		}
		if IsConflict(err) != c.conflict {
			t.Errorf("IsConflict(%s) = %v", c.code, !c.conflict)
		}
		if IsPreconditionFailed(err) != c.precond {
			t.Errorf("IsPreconditionFailed(%s) = %v", c.code, !c.precond)
		}
	}
}

func TestValidateContainerName(t *testing.T) {
	valid := []string{"abc", "my-container", "a1b2c3", "x0-1-2", strings.Repeat("a", 63)}
	for _, name := range valid {
		if err := ValidateContainerName(name); err != nil {
			t.Errorf("ValidateContainerName(%q) = %v, want nil", name, err)
		}
	}
	invalid := []string{"", "ab", strings.Repeat("a", 64), "Abc", "-abc", "abc-", "a--b", "a_b", "a.b", "a b"}
	for _, name := range invalid {
		if err := ValidateContainerName(name); err == nil {
			t.Errorf("ValidateContainerName(%q) = nil, want error", name)
		}
	}
}

func TestValidateQueueName(t *testing.T) {
	if err := ValidateQueueName("azurebench-queue-0"); err != nil {
		t.Fatal(err)
	}
	if err := ValidateQueueName("UPPER"); err == nil {
		t.Fatal("uppercase queue name accepted")
	}
}

func TestValidateBlobName(t *testing.T) {
	valid := []string{"b", "dir/sub/blob.bin", strings.Repeat("x", 1024), "UPPER and spaces"}
	for _, name := range valid {
		if err := ValidateBlobName(name); err != nil {
			t.Errorf("ValidateBlobName(%q) = %v", name, err)
		}
	}
	invalid := []string{"", strings.Repeat("x", 1025), "dir/", "a/./b", "a/../b"}
	for _, name := range invalid {
		if err := ValidateBlobName(name); err == nil {
			t.Errorf("ValidateBlobName(%q) accepted", name)
		}
	}
}

func TestValidateTableName(t *testing.T) {
	valid := []string{"abc", "AzureBenchTable", "T0123"}
	for _, name := range valid {
		if err := ValidateTableName(name); err != nil {
			t.Errorf("ValidateTableName(%q) = %v", name, err)
		}
	}
	invalid := []string{"", "ab", "0abc", "my-table", strings.Repeat("a", 64)}
	for _, name := range invalid {
		if err := ValidateTableName(name); err == nil {
			t.Errorf("ValidateTableName(%q) accepted", name)
		}
	}
}

func TestValidateKey(t *testing.T) {
	if err := ValidateKey("worker-07", "partition"); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a/b", `a\b`, "a#b", "a?b", "a\x01b", strings.Repeat("k", KB+1)} {
		if err := ValidateKey(k, "row"); err == nil {
			t.Errorf("ValidateKey(%q) accepted", k)
		}
	}
}

func TestETagGenMonotonicUnique(t *testing.T) {
	var g ETagGen
	now := time.Date(2012, 5, 21, 0, 0, 0, 0, time.UTC)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		tag := g.Next(now) // same timestamp: counter must disambiguate
		if seen[tag] {
			t.Fatalf("duplicate ETag %q", tag)
		}
		seen[tag] = true
	}
}

func TestETagMatches(t *testing.T) {
	if !ETagMatches("", "abc") {
		t.Error("empty condition should match")
	}
	if !ETagMatches(ETagAny, "abc") {
		t.Error("wildcard should match")
	}
	if !ETagMatches("abc", "abc") {
		t.Error("equal tags should match")
	}
	if ETagMatches("abc", "def") {
		t.Error("different tags matched")
	}
}

func TestRateLimiterBasics(t *testing.T) {
	l := NewRateLimiter(10, 5) // 10/s, burst 5
	now := time.Duration(0)
	for i := 0; i < 5; i++ {
		if !l.Allow(now, 1) {
			t.Fatalf("burst token %d denied", i)
		}
	}
	if l.Allow(now, 1) {
		t.Fatal("6th token allowed with empty bucket")
	}
	// After 100ms one token refills.
	now += 100 * time.Millisecond
	if !l.Allow(now, 1) {
		t.Fatal("token after refill denied")
	}
	if l.Allow(now, 1) {
		t.Fatal("second token allowed after single refill")
	}
}

func TestRateLimiterCapsAtBurst(t *testing.T) {
	l := NewRateLimiter(1000, 3)
	if got := l.Tokens(time.Hour); got != 3 {
		t.Fatalf("Tokens = %v, want burst cap 3", got)
	}
}

func TestRateLimiterSustainedRate(t *testing.T) {
	// Admitted ops over a long window must approximate rate*window.
	l := NewRateLimiter(500, 500)
	admitted := 0
	for ms := 0; ms < 10_000; ms++ {
		if l.Allow(time.Duration(ms)*time.Millisecond, 1) {
			admitted++
		}
	}
	// 10s at 500/s = 5000 plus initial burst 500.
	if admitted < 5400 || admitted > 5600 {
		t.Fatalf("admitted = %d, want ~5500", admitted)
	}
}

func TestRateLimiterPropertyNeverExceedsBudget(t *testing.T) {
	if err := quick.Check(func(seed int64, steps uint8) bool {
		l := NewRateLimiter(100, 10)
		now := time.Duration(0)
		admitted := 0.0
		n := int(steps%100) + 1
		s := seed
		for i := 0; i < n; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			now += time.Duration(uint64(s) % uint64(50*time.Millisecond))
			if l.Allow(now, 1) {
				admitted++
			}
		}
		// Total admitted must never exceed burst + rate * elapsed.
		budget := 10 + 100*now.Seconds() + 1e-9
		return admitted <= budget
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRateLimiterBadParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero rate")
		}
	}()
	NewRateLimiter(0, 1)
}

// allCodes enumerates every Code constant; the retriability matrix below
// must classify each one explicitly so a new code cannot slip into (or
// out of) the retriable set unnoticed.
var allCodes = []Code{
	CodeServerBusy, CodeInternalError, CodeInvalidInput, CodeOutOfRangeInput,
	CodeResourceNotFound, CodeResourceAlreadyExists, CodeConditionNotMet,
	CodeContainerNotFound, CodeContainerAlreadyExists, CodeBlobNotFound,
	CodeBlobAlreadyExists, CodeInvalidBlockID, CodeInvalidBlockList,
	CodeInvalidPageRange, CodeBlockCountExceedsLimit, CodeRequestBodyTooLarge,
	CodeLeaseAlreadyPresent, CodeLeaseIDMissing, CodeLeaseIDMismatch,
	CodeLeaseNotPresent, CodeQueueNotFound, CodeQueueAlreadyExists,
	CodeMessageNotFound, CodeMessageTooLarge, CodePopReceiptMismatch,
	CodeInvalidVisibility, CodeTableNotFound, CodeTableAlreadyExists,
	CodeEntityNotFound, CodeEntityAlreadyExists, CodeEntityTooLarge,
	CodePropertyLimitExceeded, CodeUpdateConditionNotMet, CodeInvalidQuery,
	CodeAccountBandwidthLimit, CodeOperationTimedOut, CodeInvalidResourceName,
	CodeOutOfCapacity, CodeBatchPartitionMismatch, CodeBatchTooManyOperations,
	CodeBatchDuplicateRowKey, CodeSnapshotNotFound, CodeInstanceUnavailable,
	CodeUnsupportedHTTPVerb, CodeMissingRequiredHeader, CodeAuthenticationFailed,
	CodeAccountTransactionLimit, CodeServerUnavailable, CodeConnectionReset,
	CodePartitionMoved,
}

func TestRetriableCoversEveryCode(t *testing.T) {
	transient := map[Code]bool{
		CodeInternalError:     true,
		CodeOperationTimedOut: true,
		CodeConnectionReset:   true,
		CodeServerUnavailable: true,
		// RoleInstanceUnavailable predates the fault model: a role instance
		// mid-restart, gone shortly after.
		CodeInstanceUnavailable: true,
		// A stale partition map resolves itself on refresh: the retry layer
		// reissues and the client re-fetches the current map.
		CodePartitionMoved: true,
	}
	busy := map[Code]bool{
		CodeServerBusy:              true,
		CodeAccountTransactionLimit: true,
		CodeAccountBandwidthLimit:   true,
	}
	seen := map[Code]bool{}
	for _, code := range allCodes {
		if seen[code] {
			t.Fatalf("code %s listed twice", code)
		}
		seen[code] = true
		err := Errf(code, 500, "x")
		if got, want := IsTransient(err), transient[code]; got != want {
			t.Errorf("IsTransient(%s) = %v, want %v", code, got, want)
		}
		if got, want := IsRetriable(err), transient[code] || busy[code]; got != want {
			t.Errorf("IsRetriable(%s) = %v, want %v", code, got, want)
		}
		// Throttles are retriable but not transient: they carry their own
		// backoff contract.
		if IsServerBusy(err) && IsTransient(err) {
			t.Errorf("code %s classified both busy and transient", code)
		}
	}
	// Non-storage and nil errors are never retriable.
	if IsRetriable(errors.New("plain")) || IsTransient(errors.New("plain")) {
		t.Error("plain error classified retriable")
	}
	if IsRetriable(nil) || IsTransient(nil) {
		t.Error("nil error classified retriable")
	}
	// Wrapped storage errors keep their classification.
	if !IsRetriable(fmt.Errorf("wrapped: %w", Errf(CodeConnectionReset, 0, "rst"))) {
		t.Error("wrapped reset not retriable")
	}
}
