package storecommon

import "time"

// LimiterPool lazily creates one RateLimiter per key and deterministically
// evicts limiters idle past a refill horizon, so per-partition limiter
// maps stay bounded under many-key workloads (zipfian tails touch millions
// of distinct partitions once each).
//
// Eviction is behaviour-preserving: the horizon is at least burst/rate
// seconds, the time an untouched bucket needs to refill completely, so an
// evicted limiter is indistinguishable from the fresh full bucket a later
// Get would create. Only the Rejects counter restarts (telemetry clamps
// for that). Like RateLimiter, the pool is clock-agnostic and not safe for
// concurrent use.
type LimiterPool struct {
	rate, burst float64
	horizon     time.Duration
	entries     map[string]*poolEntry
	lastSweep   time.Duration
}

type poolEntry struct {
	lim      *RateLimiter
	lastUsed time.Duration
}

// NewLimiterPool returns a pool of limiters with the given rate and burst.
// Both must be positive (the first Get would panic otherwise anyway).
func NewLimiterPool(rate, burst float64) *LimiterPool {
	if rate <= 0 || burst <= 0 {
		panic("storecommon: non-positive limiter pool parameters")
	}
	horizon := time.Duration(burst / rate * float64(time.Second))
	if horizon < time.Second {
		horizon = time.Second
	}
	return &LimiterPool{
		rate:    rate,
		burst:   burst,
		horizon: horizon,
		entries: map[string]*poolEntry{},
	}
}

// Get returns the limiter for key at instant now, creating a full bucket
// on first sight and marking the entry used. At most once per horizon the
// pool sweeps out entries idle a full horizon; the sweep's map iteration
// only deletes, so its order cannot influence behaviour.
func (p *LimiterPool) Get(now time.Duration, key string) *RateLimiter {
	if now-p.lastSweep >= p.horizon {
		p.lastSweep = now
		for k, e := range p.entries {
			if now-e.lastUsed >= p.horizon {
				delete(p.entries, k)
			}
		}
	}
	e := p.entries[key]
	if e == nil {
		e = &poolEntry{lim: NewRateLimiter(p.rate, p.burst)}
		p.entries[key] = e
	}
	e.lastUsed = now
	return e.lim
}

// Peek returns key's limiter without touching or creating it (nil when
// absent or when the pool itself is nil — stations of an idle service).
func (p *LimiterPool) Peek(key string) *RateLimiter {
	if p == nil {
		return nil
	}
	if e := p.entries[key]; e != nil {
		return e.lim
	}
	return nil
}

// Len returns the number of live limiters (0 for a nil pool).
func (p *LimiterPool) Len() int {
	if p == nil {
		return 0
	}
	return len(p.entries)
}

// Horizon returns the idle span after which a limiter becomes evictable.
func (p *LimiterPool) Horizon() time.Duration { return p.horizon }
