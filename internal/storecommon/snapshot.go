package storecommon

import (
	"fmt"
	"sort"

	"azurebench/internal/snapshot"
)

// Save appends the token bucket's mutable state. Rate and burst are
// construction parameters carried by config, but writing them too lets
// Load cross-check that the snapshot is being restored into a limiter
// of the same shape.
func (l *RateLimiter) Save(w *snapshot.Writer) {
	w.F64(l.rate)
	w.F64(l.burst)
	w.F64(l.tokens)
	w.Duration(l.last)
	w.U64(l.rejects)
}

// Load restores a token bucket saved by Save.
func (l *RateLimiter) Load(r *snapshot.Reader) error {
	rate := r.F64()
	burst := r.F64()
	tokens := r.F64()
	last := r.Duration()
	rejects := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if rate != l.rate || burst != l.burst {
		return fmt.Errorf("storecommon: limiter shape mismatch (snapshot rate=%g burst=%g, live rate=%g burst=%g)",
			rate, burst, l.rate, l.burst)
	}
	l.tokens = tokens
	l.last = last
	l.rejects = rejects
	return nil
}

// Save appends every pooled limiter in sorted key order plus the sweep
// cursor, so throttle decisions and deterministic eviction pick up after
// restore exactly where the checkpoint left them.
func (p *LimiterPool) Save(w *snapshot.Writer) {
	w.F64(p.rate)
	w.F64(p.burst)
	w.Duration(p.horizon)
	w.Duration(p.lastSweep)
	keys := make([]string, 0, len(p.entries))
	for k := range p.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Int(len(keys))
	for _, k := range keys {
		e := p.entries[k]
		w.String(k)
		w.Duration(e.lastUsed)
		e.lim.Save(w)
	}
}

// Load restores a pool saved by Save, replacing any live entries.
func (p *LimiterPool) Load(r *snapshot.Reader) error {
	rate := r.F64()
	burst := r.F64()
	horizon := r.Duration()
	lastSweep := r.Duration()
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if rate != p.rate || burst != p.burst || horizon != p.horizon {
		return fmt.Errorf("storecommon: limiter pool shape mismatch (snapshot rate=%g burst=%g horizon=%v)",
			rate, burst, horizon)
	}
	if n < 0 {
		return fmt.Errorf("storecommon: negative pool entry count %d", n)
	}
	p.lastSweep = lastSweep
	p.entries = make(map[string]*poolEntry, n)
	for i := 0; i < n; i++ {
		k := r.String()
		lastUsed := r.Duration()
		lim := NewRateLimiter(p.rate, p.burst)
		if err := lim.Load(r); err != nil {
			return err
		}
		if err := r.Err(); err != nil {
			return err
		}
		p.entries[k] = &poolEntry{lim: lim, lastUsed: lastUsed}
	}
	return r.Err()
}

// Save appends the ETag counter, the only mutable state: restored runs
// must mint the exact same tag strings as uninterrupted ones.
func (g *ETagGen) Save(w *snapshot.Writer) {
	w.U64(g.counter.Load())
}

// Load restores the ETag counter.
func (g *ETagGen) Load(r *snapshot.Reader) error {
	g.counter.Store(r.U64())
	return r.Err()
}
