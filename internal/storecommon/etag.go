package storecommon

import (
	"fmt"
	"sync/atomic"
	"time"
)

// ETagGen produces strictly increasing entity tags. Azure's real ETags are
// timestamp-derived; a counter component keeps ours unique even when the
// virtual clock does not advance between mutations. ETagGen is safe for
// concurrent use.
type ETagGen struct {
	counter atomic.Uint64
}

// Next returns a fresh ETag incorporating now.
func (g *ETagGen) Next(now time.Time) string {
	n := g.counter.Add(1)
	return fmt.Sprintf("W/\"datetime'%s';%d\"", now.UTC().Format("2006-01-02T15:04:05.0000000Z"), n)
}

// ETagAny is the wildcard ETag: a condition of ETagAny matches any current
// tag (the paper's benchmark uses unconditional updates via "*").
const ETagAny = "*"

// ETagMatches reports whether a request condition matches the stored tag.
// An empty condition means "no condition" and matches.
func ETagMatches(condition, stored string) bool {
	return condition == "" || condition == ETagAny || condition == stored
}
