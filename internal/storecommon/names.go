package storecommon

import "strings"

// ValidateContainerName checks Azure blob-container naming rules: 3–63
// characters, lowercase letters, digits and single dashes, starting and
// ending with a letter or digit.
func ValidateContainerName(name string) error {
	return validateDNSName(name, "container")
}

// ValidateQueueName checks Azure queue naming rules (same as containers).
func ValidateQueueName(name string) error {
	return validateDNSName(name, "queue")
}

func validateDNSName(name, kind string) error {
	if len(name) < 3 || len(name) > 63 {
		return Errf(CodeInvalidResourceName, 400, "%s name %q must be 3-63 characters", kind, name)
	}
	prevDash := true // disallow leading dash
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			prevDash = false
		case c == '-':
			if prevDash {
				return Errf(CodeInvalidResourceName, 400, "%s name %q has leading or consecutive dashes", kind, name)
			}
			prevDash = true
		default:
			return Errf(CodeInvalidResourceName, 400, "%s name %q contains invalid character %q", kind, name, c)
		}
	}
	if strings.HasSuffix(name, "-") {
		return Errf(CodeInvalidResourceName, 400, "%s name %q ends with a dash", kind, name)
	}
	return nil
}

// ValidateBlobName checks blob naming rules: 1–1024 characters, no path
// segment of "." or "..", and no trailing slash.
func ValidateBlobName(name string) error {
	if len(name) == 0 || len(name) > 1024 {
		return Errf(CodeInvalidResourceName, 400, "blob name must be 1-1024 characters")
	}
	if strings.HasSuffix(name, "/") {
		return Errf(CodeInvalidResourceName, 400, "blob name %q ends with a slash", name)
	}
	for _, seg := range strings.Split(name, "/") {
		if seg == "." || seg == ".." {
			return Errf(CodeInvalidResourceName, 400, "blob name %q contains a relative path segment", name)
		}
	}
	return nil
}

// ValidateTableName checks Azure table naming rules: 3–63 alphanumeric
// characters beginning with a letter.
func ValidateTableName(name string) error {
	if len(name) < 3 || len(name) > 63 {
		return Errf(CodeInvalidResourceName, 400, "table name %q must be 3-63 characters", name)
	}
	c0 := name[0]
	if !(c0 >= 'a' && c0 <= 'z' || c0 >= 'A' && c0 <= 'Z') {
		return Errf(CodeInvalidResourceName, 400, "table name %q must begin with a letter", name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			return Errf(CodeInvalidResourceName, 400, "table name %q contains invalid character %q", name, c)
		}
	}
	return nil
}

// ValidateKey checks a table partition or row key: at most 1 KB and free of
// the characters Azure forbids (/, \, #, ?) and control characters.
func ValidateKey(key, kind string) error {
	if len(key) > 1*KB {
		return Errf(CodeInvalidInput, 400, "%s key exceeds 1 KB", kind)
	}
	for i := 0; i < len(key); i++ {
		switch c := key[i]; {
		case c == '/' || c == '\\' || c == '#' || c == '?':
			return Errf(CodeInvalidInput, 400, "%s key %q contains forbidden character %q", kind, key, c)
		case c < 0x20 || c == 0x7f:
			return Errf(CodeInvalidInput, 400, "%s key %q contains control character", kind, key)
		}
	}
	return nil
}
