package storecommon

import "time"

// RateLimiter is a token bucket over an externally supplied clock reading
// (virtual or wall). It is deliberately clock-agnostic: callers pass the
// current instant as a Duration offset from an arbitrary fixed origin.
//
// RateLimiter is not safe for concurrent use; wrap it in a mutex for live
// mode (the simulated cloud is single-threaded by construction).
type RateLimiter struct {
	rate    float64 // tokens per second
	burst   float64 // bucket capacity
	tokens  float64
	last    time.Duration
	rejects uint64
}

// NewRateLimiter returns a full bucket admitting rate tokens per second
// with capacity burst. rate and burst must be positive.
func NewRateLimiter(rate, burst float64) *RateLimiter {
	if rate <= 0 || burst <= 0 {
		panic("storecommon: non-positive rate limiter parameters")
	}
	return &RateLimiter{rate: rate, burst: burst, tokens: burst}
}

// Allow consumes n tokens if available at instant now and reports whether
// it succeeded. Instants must be non-decreasing across calls.
func (l *RateLimiter) Allow(now time.Duration, n float64) bool {
	l.refill(now)
	if l.tokens >= n {
		l.tokens -= n
		return true
	}
	l.rejects++
	return false
}

// Rejects returns how many Allow calls have been refused — the
// throttle-reject signal station telemetry samples.
func (l *RateLimiter) Rejects() uint64 { return l.rejects }

// Rate returns the limiter's admission rate in tokens per second.
func (l *RateLimiter) Rate() float64 { return l.rate }

// Tokens returns the available tokens at instant now.
func (l *RateLimiter) Tokens(now time.Duration) float64 {
	l.refill(now)
	return l.tokens
}

func (l *RateLimiter) refill(now time.Duration) {
	if now <= l.last {
		return
	}
	dt := (now - l.last).Seconds()
	l.last = now
	l.tokens += dt * l.rate
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
}
