package sim

import "time"

// Proc is a cooperative simulation process. A Proc's methods that can block
// (Sleep, Join, and the blocking methods of Resource, Store, Signal,
// WaitGroup that take a *Proc) must only be called from the process's own
// goroutine while it is the running process.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	done   *Signal
	ended  bool
}

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.env.now }

// Rand returns the environment's PRNG.
func (p *Proc) Rand() *Rand { return p.env.rng }

// Sleep suspends the process for d of virtual time. Negative durations are
// treated as zero (yield to same-time events scheduled earlier).
func (p *Proc) Sleep(d time.Duration) {
	p.env.mustBeRunning(p, "Sleep")
	if d < 0 {
		d = 0
	}
	p.env.schedule(p.env.now+d, func() { p.env.activate(p) })
	p.park()
}

// Yield gives same-instant events scheduled before now a chance to run,
// then resumes. Equivalent to Sleep(0).
func (p *Proc) Yield() { p.Sleep(0) }

// Join blocks until q has finished. Joining an already-finished process
// returns immediately.
func (p *Proc) Join(q *Proc) {
	q.done.Wait(p)
}

// Ended reports whether the process function has returned.
func (p *Proc) Ended() bool { return p.ended }

// park transfers control back to the kernel without scheduling a wake-up.
// Something else (a resource grant, a signal, a timer event captured
// before parking) must re-activate the process.
func (p *Proc) park() {
	p.env.yield <- struct{}{}
	<-p.resume
}
