package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestRandIntnRange(t *testing.T) {
	if err := quick.Check(func(seed int64, n uint16) bool {
		m := int(n%1000) + 1
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandFloat64Mean(t *testing.T) {
	r := NewRand(7)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.05 {
		t.Fatalf("exp mean = %v, want ~1", mean)
	}
}

func TestRandNormMoments(t *testing.T) {
	r := NewRand(11)
	sum, sumSq := 0.0, 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed int64, n uint8) bool {
		m := int(n % 64)
		p := NewRand(seed).Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandFillDeterministicAndCovers(t *testing.T) {
	a := make([]byte, 37)
	b := make([]byte, 37)
	NewRand(5).Fill(a)
	NewRand(5).Fill(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Fill not deterministic")
		}
	}
	zero := 0
	for _, v := range a {
		if v == 0 {
			zero++
		}
	}
	if zero > 10 {
		t.Fatalf("suspiciously many zero bytes: %d", zero)
	}
}

func TestRandIntnZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}
