package sim

// Signal is a one-shot broadcast event: processes Wait until some process
// (or kernel callback) Fires it; thereafter Wait returns immediately.
type Signal struct {
	env     *Env
	fired   bool
	waiters []*Proc
}

// NewSignal creates an unfired signal.
func NewSignal(env *Env) *Signal {
	return &Signal{env: env}
}

// Fired reports whether the signal has been fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire fires the signal, waking all waiters in FIFO order at the current
// instant. Firing twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	for _, p := range s.waiters {
		p := p
		s.env.schedule(s.env.now, func() { s.env.activate(p) })
	}
	s.waiters = nil
}

// Wait blocks until the signal fires (returns immediately if it already
// has).
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	s.env.mustBeRunning(p, "Signal.Wait")
	s.waiters = append(s.waiters, p)
	p.park()
}

// WaitGroup is a counting barrier analogous to sync.WaitGroup, but for
// simulation processes.
type WaitGroup struct {
	env     *Env
	count   int
	waiters []*Proc
}

// NewWaitGroup creates a WaitGroup with count zero.
func NewWaitGroup(env *Env) *WaitGroup {
	return &WaitGroup{env: env}
}

// Add adds delta (which may be negative) to the counter. If the counter
// reaches zero, all waiters wake. It panics if the counter goes negative.
func (w *WaitGroup) Add(delta int) {
	w.count += delta
	if w.count < 0 {
		panic("sim: WaitGroup counter went negative")
	}
	if w.count == 0 {
		for _, p := range w.waiters {
			p := p
			w.env.schedule(w.env.now, func() { w.env.activate(p) })
		}
		w.waiters = nil
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Count returns the current counter value.
func (w *WaitGroup) Count() int { return w.count }

// Wait blocks until the counter is zero. If it is already zero, Wait
// returns immediately.
func (w *WaitGroup) Wait(p *Proc) {
	if w.count == 0 {
		return
	}
	w.env.mustBeRunning(p, "WaitGroup.Wait")
	w.waiters = append(w.waiters, p)
	p.park()
}
