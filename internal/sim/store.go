package sim

// Store is an unbounded FIFO buffer of items with blocking Get. Puts never
// block. When multiple processes are blocked in Get, items are handed to
// them in the order they arrived (strict FIFO fairness).
type Store[T any] struct {
	env     *Env
	name    string
	items   []T
	waiters []*storeWaiter[T]
	puts    uint64
	gets    uint64
}

type storeWaiter[T any] struct {
	p    *Proc
	item T
}

// NewStore creates an empty store.
func NewStore[T any](env *Env, name string) *Store[T] {
	return &Store[T]{env: env, name: name}
}

// Name returns the store name.
func (s *Store[T]) Name() string { return s.name }

// Len returns the number of buffered items (excluding items already handed
// to waiters that have not yet resumed).
func (s *Store[T]) Len() int { return len(s.items) }

// Waiting returns the number of processes blocked in Get.
func (s *Store[T]) Waiting() int { return len(s.waiters) }

// Puts returns the total number of Put calls.
func (s *Store[T]) Puts() uint64 { return s.puts }

// Gets returns the total number of completed Gets.
func (s *Store[T]) Gets() uint64 { return s.gets }

// Put appends an item. If a process is blocked in Get, the item is handed
// directly to the longest-waiting one, which resumes at the current
// instant.
func (s *Store[T]) Put(item T) {
	s.puts++
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		copy(s.waiters, s.waiters[1:])
		s.waiters[len(s.waiters)-1] = nil
		s.waiters = s.waiters[:len(s.waiters)-1]
		w.item = item
		s.env.schedule(s.env.now, func() { s.env.activate(w.p) })
		return
	}
	s.items = append(s.items, item)
}

// Get removes and returns the oldest item, blocking until one is available.
func (s *Store[T]) Get(p *Proc) T {
	s.env.mustBeRunning(p, "Store.Get")
	if len(s.items) > 0 {
		item := s.items[0]
		var zero T
		s.items[0] = zero
		s.items = s.items[1:]
		s.gets++
		return item
	}
	w := &storeWaiter[T]{p: p}
	s.waiters = append(s.waiters, w)
	p.park()
	s.gets++
	return w.item
}

// TryGet removes and returns the oldest item without blocking.
func (s *Store[T]) TryGet() (T, bool) {
	var zero T
	if len(s.items) == 0 {
		return zero, false
	}
	item := s.items[0]
	s.items[0] = zero
	s.items = s.items[1:]
	s.gets++
	return item, true
}
