package sim

import (
	"container/heap"
	"time"
)

// event is a pending simulation event: at time at, run fire.
type event struct {
	at   time.Duration
	seq  uint64 // tie-breaker: events at the same instant fire in schedule order
	fire func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

func (h *eventHeap) push(ev *event) { heap.Push(h, ev) }

func (h *eventHeap) pop() *event { return heap.Pop(h).(*event) }
