package sim

import (
	"fmt"
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEnv(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEnv(1)
	var at time.Duration
	e.Go("p", func(p *Proc) {
		p.Sleep(5 * time.Second)
		at = p.Now()
	})
	e.Run()
	if at != 5*time.Second {
		t.Fatalf("woke at %v, want 5s", at)
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("final time %v, want 5s", e.Now())
	}
}

func TestSleepNegativeTreatedAsZero(t *testing.T) {
	e := NewEnv(1)
	ok := false
	e.Go("p", func(p *Proc) {
		p.Sleep(-time.Second)
		ok = true
	})
	e.Run()
	if !ok {
		t.Fatal("process did not resume after negative sleep")
	}
	if e.Now() != 0 {
		t.Fatalf("time advanced to %v on negative sleep", e.Now())
	}
}

func TestEventOrderingSameInstantFIFO(t *testing.T) {
	e := NewEnv(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			order = append(order, i)
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestInterleavingByTimestamp(t *testing.T) {
	e := NewEnv(1)
	var trace []string
	e.Go("a", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(2 * time.Second)
			trace = append(trace, fmt.Sprintf("a@%v", p.Now()))
		}
	})
	e.Go("b", func(p *Proc) {
		for i := 0; i < 2; i++ {
			p.Sleep(3 * time.Second)
			trace = append(trace, fmt.Sprintf("b@%v", p.Now()))
		}
	})
	e.Run()
	// At t=6s both wake; b's wake event was scheduled first (at t=3s vs
	// t=4s), so b runs first under schedule-order tie-breaking.
	want := []string{"a@2s", "b@3s", "a@4s", "b@6s", "a@6s"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestGoAtSchedulesInFuture(t *testing.T) {
	e := NewEnv(1)
	var started time.Duration
	e.GoAt(7*time.Second, "late", func(p *Proc) {
		started = p.Now()
	})
	e.Run()
	if started != 7*time.Second {
		t.Fatalf("started at %v, want 7s", started)
	}
}

func TestJoin(t *testing.T) {
	e := NewEnv(1)
	var joinedAt time.Duration
	worker := e.Go("worker", func(p *Proc) {
		p.Sleep(10 * time.Second)
	})
	e.Go("waiter", func(p *Proc) {
		p.Join(worker)
		joinedAt = p.Now()
	})
	e.Run()
	if joinedAt != 10*time.Second {
		t.Fatalf("joined at %v, want 10s", joinedAt)
	}
	if !worker.Ended() {
		t.Fatal("worker not marked ended")
	}
}

func TestJoinFinishedProcessReturnsImmediately(t *testing.T) {
	e := NewEnv(1)
	worker := e.Go("worker", func(p *Proc) {})
	var joined bool
	e.GoAt(time.Second, "waiter", func(p *Proc) {
		p.Join(worker)
		joined = true
	})
	e.Run()
	if !joined {
		t.Fatal("join on finished process did not return")
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	e := NewEnv(1)
	var wokeTimes []time.Duration
	e.Go("p", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(time.Second)
			wokeTimes = append(wokeTimes, p.Now())
		}
	})
	e.RunUntil(2 * time.Second)
	if len(wokeTimes) != 2 {
		t.Fatalf("got %d wakes, want 2", len(wokeTimes))
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("clock = %v, want 2s", e.Now())
	}
	// Continue the run.
	e.Run()
	if len(wokeTimes) != 5 {
		t.Fatalf("after full run got %d wakes, want 5", len(wokeTimes))
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEnv(1)
	e.RunUntil(time.Minute)
	if e.Now() != time.Minute {
		t.Fatalf("clock = %v, want 1m", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEnv(1)
	e.Go("p", func(p *Proc) { p.Sleep(time.Hour) })
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.GoAt(time.Second, "late", func(p *Proc) {})
}

func TestBlockingCallFromWrongContextPanics(t *testing.T) {
	e := NewEnv(1)
	var p1 *Proc
	p1 = e.Go("p1", func(p *Proc) { p.Sleep(time.Hour) })
	e.Go("p2", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Sleep on foreign proc did not panic")
			}
		}()
		p1.Sleep(time.Second) // wrong: p1 is not the running process
	})
	e.RunUntil(time.Minute)
}

func TestLiveCount(t *testing.T) {
	e := NewEnv(1)
	e.Go("a", func(p *Proc) { p.Sleep(time.Second) })
	e.Go("b", func(p *Proc) { p.Sleep(2 * time.Second) })
	if e.Live() != 2 {
		t.Fatalf("Live = %d, want 2", e.Live())
	}
	e.Run()
	if e.Live() != 0 {
		t.Fatalf("Live after run = %d, want 0", e.Live())
	}
}

// TestDeterminism runs a moderately complex simulation twice and requires
// identical traces.
func TestDeterminism(t *testing.T) {
	run := func() []string {
		var trace []string
		e := NewEnv(42)
		res := NewResource(e, "srv", 2)
		st := NewStore[int](e, "jobs")
		for i := 0; i < 20; i++ {
			st.Put(i)
		}
		for w := 0; w < 5; w++ {
			w := w
			e.Go(fmt.Sprintf("w%d", w), func(p *Proc) {
				for {
					job, ok := st.TryGet()
					if !ok {
						return
					}
					res.Acquire(p)
					p.Sleep(time.Duration(1+p.Rand().Intn(5)) * time.Millisecond)
					res.Release()
					trace = append(trace, fmt.Sprintf("w%d:j%d@%v", w, job, p.Now()))
				}
			})
		}
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestEventsCounter(t *testing.T) {
	e := NewEnv(1)
	e.Go("p", func(p *Proc) { p.Sleep(time.Second) })
	e.Run()
	if e.Events() == 0 {
		t.Fatal("no events counted")
	}
}

func TestProcessPanicPropagatesToKernel(t *testing.T) {
	e := NewEnv(1)
	e.Go("bomber", func(p *Proc) {
		p.Sleep(time.Second)
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("process panic did not reach Run's caller")
		}
		if s, ok := r.(string); !ok || s != `sim: process "bomber" panicked: boom` {
			t.Fatalf("panic value = %v", r)
		}
	}()
	e.Run()
}
