package sim

import "time"

// Resource is a FIFO queueing station with fixed capacity: at most capacity
// processes hold a unit at once; further acquirers queue in strict FIFO
// order. It models a server (or a pool of identical servers sharing one
// queue).
type Resource struct {
	env      *Env
	name     string
	capacity int
	inUse    int
	waiters  []*Proc

	// Statistics.
	acquired  uint64
	busyTime  time.Duration // integral of inUse over time
	queueTime time.Duration // integral of queue length over time
	lastStamp time.Duration
	maxQueue  int
}

// NewResource creates a resource with the given capacity (>= 1).
func NewResource(env *Env, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: NewResource with capacity < 1")
	}
	return &Resource{env: env, name: name, capacity: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the configured capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting.
func (r *Resource) QueueLen() int { return len(r.waiters) }

func (r *Resource) account() {
	now := r.env.now
	dt := now - r.lastStamp
	r.busyTime += time.Duration(int64(dt) * int64(r.inUse))
	r.queueTime += time.Duration(int64(dt) * int64(len(r.waiters)))
	r.lastStamp = now
}

// Acquire obtains one unit, blocking in FIFO order until one is free.
func (r *Resource) Acquire(p *Proc) {
	r.env.mustBeRunning(p, "Resource.Acquire")
	r.account()
	r.acquired++
	if r.inUse < r.capacity {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	if len(r.waiters) > r.maxQueue {
		r.maxQueue = len(r.waiters)
	}
	p.park()
}

// TryAcquire obtains a unit without blocking; it reports whether it
// succeeded.
func (r *Resource) TryAcquire() bool {
	r.account()
	if r.inUse < r.capacity {
		r.acquired++
		r.inUse++
		return true
	}
	return false
}

// Release returns one unit. If processes are queued the unit transfers to
// the head of the queue, which is re-activated at the current instant.
// Release may be called from any process (it does not block).
func (r *Resource) Release() {
	r.account()
	if r.inUse <= 0 {
		panic("sim: Resource.Release without matching Acquire")
	}
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters[len(r.waiters)-1] = nil
		r.waiters = r.waiters[:len(r.waiters)-1]
		// The unit transfers: inUse stays constant.
		r.env.schedule(r.env.now, func() { r.env.activate(next) })
		return
	}
	r.inUse--
}

// Use acquires the resource, holds it for d of virtual time, and releases
// it. It is the common pattern for modelling a service time at a station.
func (r *Resource) Use(p *Proc, d time.Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// Stats reports utilisation statistics since the start of the simulation.
type ResourceStats struct {
	Acquired   uint64        // completed Acquire/TryAcquire grants
	Busy       time.Duration // time-integral of units in use
	QueueTime  time.Duration // time-integral of queue length
	MaxQueue   int           // high-water mark of the waiter queue
	InUse      int           // current units in use
	QueueLen   int           // current waiters
	ObservedAt time.Duration // virtual time of this snapshot
}

// Stats returns a snapshot of utilisation statistics.
func (r *Resource) Stats() ResourceStats {
	r.account()
	return ResourceStats{
		Acquired:   r.acquired,
		Busy:       r.busyTime,
		QueueTime:  r.queueTime,
		MaxQueue:   r.maxQueue,
		InUse:      r.inUse,
		QueueLen:   len(r.waiters),
		ObservedAt: r.env.now,
	}
}
