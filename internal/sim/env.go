package sim

import (
	"fmt"
	"time"
)

// Env is a simulation environment: a virtual clock plus a pending-event
// heap. Create one with NewEnv, start processes with Go, then call Run (or
// RunUntil). Env is not safe for concurrent use from outside the
// simulation; all interaction during a run must happen from simulation
// processes.
type Env struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	yield  chan struct{} // running process -> kernel handoff
	cur    *Proc         // currently running process, nil in kernel context
	rng    *Rand
	nLive  int // processes started and not yet finished
	nSpawn int // total processes ever started (used for default names)
	fired  uint64

	pendingPanic any // panic value escaping a process, re-raised in kernel context
}

// NewEnv returns a fresh environment with the clock at zero. The seed feeds
// the environment's PRNG (Env.Rand); the simulation itself is deterministic
// regardless of seed.
func NewEnv(seed int64) *Env {
	return &Env{
		yield: make(chan struct{}),
		rng:   NewRand(seed),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// Rand returns the environment's deterministic PRNG.
func (e *Env) Rand() *Rand { return e.rng }

// Events returns the number of events fired so far.
func (e *Env) Events() uint64 { return e.fired }

// Live returns the number of processes that have been started and have not
// yet returned.
func (e *Env) Live() int { return e.nLive }

// schedule enqueues fire to run at time at. It panics if at precedes the
// current time.
func (e *Env) schedule(at time.Duration, fire func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past (at=%v now=%v)", at, e.now))
	}
	e.seq++
	e.events.push(&event{at: at, seq: e.seq, fire: fire})
}

// Go starts a new process running fn at the current virtual time. If name
// is empty a sequential name is assigned. Go may be called before Run or
// from a running process. The returned Proc can be joined via Proc.Join.
func (e *Env) Go(name string, fn func(*Proc)) *Proc {
	return e.GoAt(e.now, name, fn)
}

// GoAt starts a new process running fn at virtual time at (which must not
// be in the past).
func (e *Env) GoAt(at time.Duration, name string, fn func(*Proc)) *Proc {
	e.nSpawn++
	if name == "" {
		name = fmt.Sprintf("proc-%d", e.nSpawn)
	}
	p := &Proc{
		env:    e,
		name:   name,
		resume: make(chan struct{}),
		done:   NewSignal(e),
	}
	e.nLive++
	e.schedule(at, func() { e.startProc(p, fn) })
	return p
}

// startProc launches the process goroutine and runs it until its first
// yield. Called in kernel context.
func (e *Env) startProc(p *Proc, fn func(*Proc)) {
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				e.pendingPanic = fmt.Sprintf("sim: process %q panicked: %v", p.name, r)
			}
			p.ended = true
			e.nLive--
			p.done.Fire()
			e.yield <- struct{}{}
		}()
		fn(p)
	}()
	e.activate(p)
}

// activate hands control to p and blocks until p yields (or ends). Called
// in kernel context only. A panic that escaped the process is re-raised
// here, in the caller of Run, where it can be recovered.
func (e *Env) activate(p *Proc) {
	prev := e.cur
	e.cur = p
	p.resume <- struct{}{}
	<-e.yield
	e.cur = prev
	if e.pendingPanic != nil {
		r := e.pendingPanic
		e.pendingPanic = nil
		panic(r)
	}
}

// Run executes events until the heap is empty, then returns the final
// virtual time. Processes that are parked forever (e.g. waiting on a signal
// nobody fires) do not keep Run alive; Run returns with them still parked.
func (e *Env) Run() time.Duration {
	for len(e.events) > 0 {
		e.step()
	}
	return e.now
}

// RunLimited executes events until the heap is empty or maxEvents have
// fired since the call started; it reports whether the simulation drained.
// Use it as a watchdog for simulations that can poll forever when a
// termination condition is mis-specified (e.g. a barrier participant
// count that never arrives).
func (e *Env) RunLimited(maxEvents uint64) bool {
	start := e.fired
	for len(e.events) > 0 {
		if e.fired-start >= maxEvents {
			return false
		}
		e.step()
	}
	return true
}

// RunUntil executes events with timestamps <= t, then sets the clock to t
// and returns. Pending later events remain queued; a subsequent Run or
// RunUntil continues the simulation.
func (e *Env) RunUntil(t time.Duration) time.Duration {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.step()
	}
	if e.now < t {
		e.now = t
	}
	return e.now
}

func (e *Env) step() {
	ev := e.events.pop()
	e.now = ev.at
	e.fired++
	ev.fire()
}

// mustBeRunning panics unless p is the process currently executing. All
// blocking primitives call this: it catches the common mistake of calling a
// blocking method from outside the simulation or from the wrong process.
func (e *Env) mustBeRunning(p *Proc, op string) {
	if e.cur != p {
		panic(fmt.Sprintf("sim: %s called from process %q which is not running", op, p.name))
	}
}
