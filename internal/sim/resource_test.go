package sim

import (
	"fmt"
	"testing"
	"time"
)

func TestResourceSerializesAtCapacityOne(t *testing.T) {
	e := NewEnv(1)
	r := NewResource(e, "srv", 1)
	var finish []time.Duration
	for i := 0; i < 4; i++ {
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			r.Use(p, time.Second)
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	want := []time.Duration{1 * time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish times = %v, want %v", finish, want)
		}
	}
}

func TestResourceParallelAtCapacityN(t *testing.T) {
	e := NewEnv(1)
	r := NewResource(e, "srv", 4)
	var finish []time.Duration
	for i := 0; i < 4; i++ {
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			r.Use(p, time.Second)
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	for _, f := range finish {
		if f != time.Second {
			t.Fatalf("finish times = %v, want all 1s", finish)
		}
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEnv(1)
	r := NewResource(e, "srv", 1)
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		e.GoAt(time.Duration(i)*time.Millisecond, fmt.Sprintf("p%d", i), func(p *Proc) {
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(time.Second)
			r.Release()
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("service order = %v, want FIFO", order)
		}
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEnv(1)
	r := NewResource(e, "srv", 1)
	e.Go("p", func(p *Proc) {
		if !r.TryAcquire() {
			t.Error("first TryAcquire failed")
		}
		if r.TryAcquire() {
			t.Error("second TryAcquire succeeded at capacity")
		}
		r.Release()
		if !r.TryAcquire() {
			t.Error("TryAcquire after release failed")
		}
		r.Release()
	})
	e.Run()
}

func TestResourceReleaseWithoutAcquirePanics(t *testing.T) {
	e := NewEnv(1)
	r := NewResource(e, "srv", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	r.Release()
}

func TestResourceZeroCapacityPanics(t *testing.T) {
	e := NewEnv(1)
	defer func() {
		if recover() == nil {
			t.Fatal("NewResource(0) did not panic")
		}
	}()
	NewResource(e, "srv", 0)
}

func TestResourceStats(t *testing.T) {
	e := NewEnv(1)
	r := NewResource(e, "srv", 1)
	for i := 0; i < 3; i++ {
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			r.Use(p, time.Second)
		})
	}
	e.Run()
	st := r.Stats()
	if st.Acquired != 3 {
		t.Errorf("Acquired = %d, want 3", st.Acquired)
	}
	if st.Busy != 3*time.Second {
		t.Errorf("Busy = %v, want 3s", st.Busy)
	}
	// p1 waits 1s, p2 waits 2s => queue-time integral 3s.
	if st.QueueTime != 3*time.Second {
		t.Errorf("QueueTime = %v, want 3s", st.QueueTime)
	}
	if st.MaxQueue != 2 {
		t.Errorf("MaxQueue = %d, want 2", st.MaxQueue)
	}
	if st.InUse != 0 || st.QueueLen != 0 {
		t.Errorf("InUse/QueueLen = %d/%d, want 0/0", st.InUse, st.QueueLen)
	}
}

func TestResourceUtilizationUnderLoad(t *testing.T) {
	// Two servers, four clients each needing 1s: total busy time must be 4s
	// and the run must take 2s.
	e := NewEnv(1)
	r := NewResource(e, "srv", 2)
	for i := 0; i < 4; i++ {
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) { r.Use(p, time.Second) })
	}
	end := e.Run()
	if end != 2*time.Second {
		t.Fatalf("makespan = %v, want 2s", end)
	}
	if st := r.Stats(); st.Busy != 4*time.Second {
		t.Fatalf("busy = %v, want 4s", st.Busy)
	}
}
