package sim

import (
	"fmt"
	"hash/crc64"
	"time"

	"azurebench/internal/snapshot"
)

// OnTime schedules fn to run in kernel context at virtual time at. It is
// the checkpoint hook: unlike Go, no process is spawned, so fn runs with
// no live goroutine of its own and may observe — but must not mutate —
// simulation state. Scheduling the hook consumes one event sequence
// number up front, which shifts every later event's tie-breaker
// uniformly and therefore preserves the relative order of all other
// events: a hooked run and an unhooked run fire the same events in the
// same order at the same times.
func (e *Env) OnTime(at time.Duration, fn func()) {
	e.schedule(at, fn)
}

// SnapshotSection implements snapshot.Snapshotter.
func (e *Env) SnapshotSection() string { return "sim/env" }

// Save appends the kernel state: virtual clock, event/sequence counters,
// PRNG stream, process accounting, and a deterministic fingerprint of
// the pending-event heap (count plus a CRC-64 over every (at, seq)
// pair). Event closures themselves cannot be serialized — they close
// over goroutine stacks — so restore either requires quiescence (empty
// heap, direct Load) or replay verification, where this fingerprint
// proves the replayed heap matches the checkpointed one.
func (e *Env) Save(w *snapshot.Writer) {
	w.Duration(e.now)
	w.U64(e.seq)
	w.U64(e.fired)
	w.Int(e.nSpawn)
	w.Int(e.nLive)
	w.U64(e.rng.State())
	w.Int(len(e.events))
	w.U64(e.eventFingerprint())
}

// Load restores the kernel state into a quiescent environment: the
// event heap must be empty both in the snapshot and live, because
// pending events carry closures that cannot be rebuilt from bytes.
// Mid-run snapshots (non-empty heap) are restored by replay instead.
func (e *Env) Load(r *snapshot.Reader) error {
	now := r.Duration()
	seq := r.U64()
	fired := r.U64()
	nSpawn := r.Int()
	nLive := r.Int()
	rngState := r.U64()
	nEvents := r.Int()
	r.U64() // heap fingerprint, meaningful only when nEvents > 0
	if err := r.Err(); err != nil {
		return err
	}
	if nEvents != 0 || nLive != 0 {
		return fmt.Errorf("sim: snapshot is not quiescent (%d pending events, %d live procs); only quiescent snapshots can be loaded directly", nEvents, nLive)
	}
	if len(e.events) != 0 || e.nLive != 0 {
		return fmt.Errorf("sim: loading into a non-quiescent env (%d pending events, %d live procs)", len(e.events), e.nLive)
	}
	e.now = now
	e.seq = seq
	e.fired = fired
	e.nSpawn = nSpawn
	e.rng.SetState(rngState)
	return nil
}

var eventCRCTable = crc64.MakeTable(crc64.ECMA)

// eventFingerprint hashes the (at, seq) pairs of all pending events in
// heap-pop order without disturbing the heap. Two identical replays have
// identical heaps, so equal fingerprints; any drift in event timing or
// scheduling order changes the hash.
func (e *Env) eventFingerprint() uint64 {
	if len(e.events) == 0 {
		return 0
	}
	// Copy event references and sort by (at, seq) — the heap slice order
	// itself is a valid but non-canonical layout.
	evs := make([]*event, len(e.events))
	copy(evs, e.events)
	sortEvents(evs)
	var buf [16]byte
	crc := crc64.Update(0, eventCRCTable, nil)
	for _, ev := range evs {
		at := uint64(ev.at)
		sq := ev.seq
		for i := 0; i < 8; i++ {
			buf[i] = byte(at >> (56 - 8*i))
			buf[8+i] = byte(sq >> (56 - 8*i))
		}
		crc = crc64.Update(crc, eventCRCTable, buf[:])
	}
	return crc
}

// sortEvents orders events by (at, seq) — insertion sort is fine for the
// heap sizes snapshots see, and avoids pulling in package sort's
// comparison indirection on the hot checkpoint path.
func sortEvents(evs []*event) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0; j-- {
			a, b := evs[j-1], evs[j]
			if a.at < b.at || (a.at == b.at && a.seq < b.seq) {
				break
			}
			evs[j-1], evs[j] = b, a
		}
	}
}

// Save appends the station's utilisation state: the occupancy and the
// telemetry integrals. Parked waiter processes cannot be serialized, so
// only their count is recorded (zero at quiescence; the replay-verified
// path never loads resources directly).
func (r *Resource) Save(w *snapshot.Writer) {
	w.String(r.name)
	w.Int(r.capacity)
	w.Int(r.inUse)
	w.Int(len(r.waiters))
	w.U64(r.acquired)
	w.Duration(r.busyTime)
	w.Duration(r.queueTime)
	w.Duration(r.lastStamp)
	w.Int(r.maxQueue)
}

// Load restores a quiescent station saved by Save: no units held, no
// waiters, on either side.
func (r *Resource) Load(rd *snapshot.Reader) error {
	name := rd.String()
	capacity := rd.Int()
	inUse := rd.Int()
	waiters := rd.Int()
	acquired := rd.U64()
	busyTime := rd.Duration()
	queueTime := rd.Duration()
	lastStamp := rd.Duration()
	maxQueue := rd.Int()
	if err := rd.Err(); err != nil {
		return err
	}
	if name != r.name || capacity != r.capacity {
		return fmt.Errorf("sim: station mismatch (snapshot %q cap %d, live %q cap %d)", name, capacity, r.name, r.capacity)
	}
	if inUse != 0 || waiters != 0 {
		return fmt.Errorf("sim: station %q snapshot is not quiescent (%d in use, %d waiting)", name, inUse, waiters)
	}
	if r.inUse != 0 || len(r.waiters) != 0 {
		return fmt.Errorf("sim: loading into busy station %q", r.name)
	}
	r.acquired = acquired
	r.busyTime = busyTime
	r.queueTime = queueTime
	r.lastStamp = lastStamp
	r.maxQueue = maxQueue
	return nil
}

// State exposes the PRNG's internal state for checkpointing.
func (r *Rand) State() uint64 { return r.state }

// SetState restores a PRNG state captured with State.
func (r *Rand) SetState(s uint64) { r.state = s }
