package sim

import (
	"testing"
	"time"
)

func TestRunLimitedStopsRunawaySimulation(t *testing.T) {
	e := NewEnv(1)
	e.Go("poller", func(p *Proc) {
		for { // a barrier that never satisfies: polls forever
			p.Sleep(time.Second)
		}
	})
	if e.RunLimited(1000) {
		t.Fatal("runaway simulation reported as drained")
	}
	if e.Events() < 1000 {
		t.Fatalf("fired %d events, expected to hit the limit", e.Events())
	}
}

func TestRunLimitedDrainsFiniteSimulation(t *testing.T) {
	e := NewEnv(1)
	e.Go("p", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(time.Second)
		}
	})
	if !e.RunLimited(1_000_000) {
		t.Fatal("finite simulation reported as runaway")
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("clock = %v", e.Now())
	}
}
