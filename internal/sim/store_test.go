package sim

import (
	"fmt"
	"testing"
	"time"
)

func TestStorePutThenGet(t *testing.T) {
	e := NewEnv(1)
	s := NewStore[string](e, "s")
	var got string
	e.Go("p", func(p *Proc) {
		s.Put("hello")
		got = s.Get(p)
	})
	e.Run()
	if got != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestStoreGetBlocksUntilPut(t *testing.T) {
	e := NewEnv(1)
	s := NewStore[int](e, "s")
	var gotAt time.Duration
	e.Go("consumer", func(p *Proc) {
		_ = s.Get(p)
		gotAt = p.Now()
	})
	e.Go("producer", func(p *Proc) {
		p.Sleep(3 * time.Second)
		s.Put(1)
	})
	e.Run()
	if gotAt != 3*time.Second {
		t.Fatalf("got at %v, want 3s", gotAt)
	}
}

func TestStoreFIFOItems(t *testing.T) {
	e := NewEnv(1)
	s := NewStore[int](e, "s")
	var got []int
	e.Go("p", func(p *Proc) {
		for i := 0; i < 5; i++ {
			s.Put(i)
		}
		for i := 0; i < 5; i++ {
			got = append(got, s.Get(p))
		}
	})
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want ascending", got)
		}
	}
}

func TestStoreFIFOWaiters(t *testing.T) {
	e := NewEnv(1)
	s := NewStore[int](e, "s")
	var order []string
	for i := 0; i < 3; i++ {
		i := i
		e.GoAt(time.Duration(i)*time.Millisecond, fmt.Sprintf("c%d", i), func(p *Proc) {
			v := s.Get(p)
			order = append(order, fmt.Sprintf("c%d<-%d", i, v))
		})
	}
	e.GoAt(time.Second, "producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			s.Put(i)
		}
	})
	e.Run()
	want := []string{"c0<-0", "c1<-1", "c2<-2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestStoreTryGet(t *testing.T) {
	e := NewEnv(1)
	s := NewStore[int](e, "s")
	if _, ok := s.TryGet(); ok {
		t.Fatal("TryGet on empty store succeeded")
	}
	s.Put(7)
	v, ok := s.TryGet()
	if !ok || v != 7 {
		t.Fatalf("TryGet = %d,%v want 7,true", v, ok)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}

func TestStoreCounters(t *testing.T) {
	e := NewEnv(1)
	s := NewStore[int](e, "s")
	e.Go("p", func(p *Proc) {
		s.Put(1)
		s.Put(2)
		_ = s.Get(p)
	})
	e.Run()
	if s.Puts() != 2 || s.Gets() != 1 || s.Len() != 1 {
		t.Fatalf("puts/gets/len = %d/%d/%d, want 2/1/1", s.Puts(), s.Gets(), s.Len())
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEnv(1)
	sig := NewSignal(e)
	var woke []time.Duration
	for i := 0; i < 3; i++ {
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			sig.Wait(p)
			woke = append(woke, p.Now())
		})
	}
	e.Go("firer", func(p *Proc) {
		p.Sleep(5 * time.Second)
		sig.Fire()
	})
	e.Run()
	if len(woke) != 3 {
		t.Fatalf("woke %d procs, want 3", len(woke))
	}
	for _, w := range woke {
		if w != 5*time.Second {
			t.Fatalf("woke at %v, want 5s", w)
		}
	}
	if !sig.Fired() {
		t.Fatal("signal not marked fired")
	}
	// Waiting after fire returns immediately.
	var after bool
	e.Go("late", func(p *Proc) {
		sig.Wait(p)
		after = true
	})
	e.Run()
	if !after {
		t.Fatal("late waiter blocked on fired signal")
	}
}

func TestSignalDoubleFireNoop(t *testing.T) {
	e := NewEnv(1)
	sig := NewSignal(e)
	sig.Fire()
	sig.Fire() // must not panic
}

func TestWaitGroup(t *testing.T) {
	e := NewEnv(1)
	wg := NewWaitGroup(e)
	wg.Add(3)
	var doneAt time.Duration
	for i := 1; i <= 3; i++ {
		i := i
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Second)
			wg.Done()
		})
	}
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	e.Run()
	if doneAt != 3*time.Second {
		t.Fatalf("waiter resumed at %v, want 3s", doneAt)
	}
}

func TestWaitGroupZeroCountDoesNotBlock(t *testing.T) {
	e := NewEnv(1)
	wg := NewWaitGroup(e)
	ok := false
	e.Go("p", func(p *Proc) {
		wg.Wait(p)
		ok = true
	})
	e.Run()
	if !ok {
		t.Fatal("Wait on zero WaitGroup blocked")
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	e := NewEnv(1)
	wg := NewWaitGroup(e)
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter did not panic")
		}
	}()
	wg.Done()
}
