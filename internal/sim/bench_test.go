package sim

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures raw kernel speed: how many
// schedule-sleep-wake cycles per second the DES sustains. This bounds how
// fast paper-scale experiments regenerate.
func BenchmarkEventThroughput(b *testing.B) {
	b.ReportAllocs()
	e := NewEnv(1)
	e.Go("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	e.Run()
}

// BenchmarkResourceContention measures kernel performance under FIFO
// queueing: 16 processes contending for a capacity-1 resource.
func BenchmarkResourceContention(b *testing.B) {
	b.ReportAllocs()
	e := NewEnv(1)
	r := NewResource(e, "srv", 1)
	per := b.N/16 + 1
	for w := 0; w < 16; w++ {
		e.Go("w", func(p *Proc) {
			for i := 0; i < per; i++ {
				r.Use(p, time.Microsecond)
			}
		})
	}
	b.ResetTimer()
	e.Run()
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
