package sim

import "math"

// Rand is a small, fast, deterministic PRNG (splitmix64). It is independent
// of math/rand so that simulation traces cannot change under us when the
// standard library evolves. It is not safe for concurrent use; in a
// simulation only one process runs at a time, so no locking is needed.
type Rand struct {
	state uint64
}

// NewRand returns a Rand seeded with seed. Distinct seeds give independent
// looking streams; seed 0 is valid.
func NewRand(seed int64) *Rand {
	r := &Rand{state: uint64(seed)}
	// Warm up so that small seeds do not produce correlated first outputs.
	r.Uint64()
	r.Uint64()
	return r
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative random int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform random int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1 (Box–Muller).
func (r *Rand) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		u2 := r.Float64()
		if u1 <= 0 {
			continue
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Fill fills b with pseudo-random bytes.
func (r *Rand) Fill(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
		b[i+4] = byte(v >> 32)
		b[i+5] = byte(v >> 40)
		b[i+6] = byte(v >> 48)
		b[i+7] = byte(v >> 56)
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}
