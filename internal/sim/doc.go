// Package sim implements a deterministic, process-oriented discrete-event
// simulation kernel.
//
// Processes are ordinary goroutines that run cooperatively: exactly one
// process (or the kernel) executes at a time, and control is handed over at
// well-defined yield points (Sleep, Acquire, Wait, ...). Virtual time only
// advances in the kernel loop, between events. Given the same seed and the
// same program, a simulation produces the identical event trace on every
// run, which makes experiments reproducible bit-for-bit.
//
// The design follows the classic SimPy/CSIM process model:
//
//   - Env owns the virtual clock and the pending-event heap.
//   - Proc is a cooperative process; it may only call blocking primitives
//     from its own goroutine while it is the running process.
//   - Resource is a FIFO server with fixed capacity (a queueing station).
//   - Store is a FIFO buffer of items with blocking Get.
//   - Signal is a one-shot broadcast event; WaitGroup is a counting barrier.
//
// Events scheduled for the same instant fire in scheduling order (a strict
// sequence number breaks ties), so FIFO disciplines are exact, not
// probabilistic.
package sim
