package retry

import (
	"errors"
	"testing"
	"time"

	"azurebench/internal/storecommon"
)

var errBusy = storecommon.Errf(storecommon.CodeServerBusy, 503, "busy")
var errFault = storecommon.Errf(storecommon.CodeInternalError, 500, "boom")
var errFatal = storecommon.Errf(storecommon.CodeBlobNotFound, 404, "gone")

func TestShouldRetryClassification(t *testing.T) {
	p := Policy{MaxAttempts: 5}
	if p.ShouldRetry(0, 0, nil) {
		t.Error("retried nil error")
	}
	if p.ShouldRetry(0, 0, errFatal) {
		t.Error("retried non-retriable error")
	}
	if p.ShouldRetry(0, 0, errors.New("plain")) {
		t.Error("retried unclassified plain error")
	}
	if !p.ShouldRetry(0, 0, errBusy) || !p.ShouldRetry(0, 0, errFault) {
		t.Error("did not retry retriable errors")
	}

	busyOnly := Policy{MaxAttempts: 5, Classify: storecommon.IsServerBusy}
	if busyOnly.ShouldRetry(0, 0, errFault) {
		t.Error("busy-only policy retried a transient fault")
	}
	if !busyOnly.ShouldRetry(0, 0, errBusy) {
		t.Error("busy-only policy did not retry ServerBusy")
	}
}

func TestShouldRetryAttemptCap(t *testing.T) {
	p := Policy{MaxAttempts: 3}
	if !p.ShouldRetry(0, 0, errBusy) || !p.ShouldRetry(1, 0, errBusy) {
		t.Error("stopped before the attempt cap")
	}
	if p.ShouldRetry(2, 0, errBusy) {
		t.Error("exceeded MaxAttempts")
	}
	single := Policy{} // MaxAttempts <= 0: one attempt, no retries
	if single.ShouldRetry(0, 0, errBusy) {
		t.Error("zero policy retried")
	}
}

func TestShouldRetryDeadline(t *testing.T) {
	p := Policy{MaxAttempts: 100, Deadline: time.Minute}
	if !p.ShouldRetry(0, 59*time.Second, errBusy) {
		t.Error("stopped before the deadline")
	}
	if p.ShouldRetry(0, time.Minute, errBusy) {
		t.Error("retried at the deadline")
	}
}

func TestDelayShape(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, Multiplier: 2, MaxDelay: 500 * time.Millisecond}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		500 * time.Millisecond, 500 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := p.Delay(i, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	fixed := Policy{BaseDelay: time.Second, Multiplier: 1}
	for i := 0; i < 4; i++ {
		if got := fixed.Delay(i, nil); got != time.Second {
			t.Errorf("fixed Delay(%d) = %v", i, got)
		}
	}
}

func TestDelayJitter(t *testing.T) {
	p := Policy{BaseDelay: time.Second, Jitter: 0.5}
	if got := p.Delay(0, func() float64 { return 0 }); got != 500*time.Millisecond {
		t.Errorf("low jitter draw: %v", got)
	}
	if got := p.Delay(0, func() float64 { return 0.5 }); got != time.Second {
		t.Errorf("mid jitter draw: %v", got)
	}
	// Zero jitter must not consume randomness.
	drew := false
	nojit := Policy{BaseDelay: time.Second}
	nojit.Delay(0, func() float64 { drew = true; return 0 })
	if drew {
		t.Error("jitter-free policy drew a random number")
	}
}

func TestBudget(t *testing.T) {
	b := NewBudget(2)
	p := Policy{MaxAttempts: 100, Budget: b}
	q := Policy{MaxAttempts: 100, Budget: b} // shares the same pool
	if !p.ShouldRetry(0, 0, errBusy) || !q.ShouldRetry(0, 0, errBusy) {
		t.Fatal("budget blocked funded retries")
	}
	if p.ShouldRetry(0, 0, errBusy) {
		t.Error("retried past an exhausted budget")
	}
	if b.Spent() != 2 || b.Remaining() != 0 {
		t.Errorf("budget accounting: spent=%d remaining=%d", b.Spent(), b.Remaining())
	}
	var nilBudget *Budget
	if !nilBudget.spend() || nilBudget.Spent() != 0 {
		t.Error("nil budget is not unlimited")
	}
}

func TestPresets(t *testing.T) {
	paper := Paper(time.Second)
	if paper.Delay(0, nil) != time.Second || paper.Delay(7, nil) != time.Second {
		t.Error("paper policy backoff is not fixed")
	}
	if paper.ShouldRetry(0, 0, errFault) {
		t.Error("paper policy retried a transient fault")
	}
	if !paper.ShouldRetry(0, time.Hour, errBusy) {
		t.Error("paper policy has a deadline")
	}
	res := Resilient()
	if !res.ShouldRetry(0, 0, errFault) || !res.ShouldRetry(0, 0, errBusy) {
		t.Error("resilient policy rejected retriable errors")
	}
	if res.ShouldRetry(0, res.Deadline, errBusy) {
		t.Error("resilient policy ignored its deadline")
	}
}
