package retry

import snap "azurebench/internal/snapshot"

// Save appends the shared budget's token counts, so a fleet restored
// from a checkpoint resumes with exactly the retries it had left. A nil
// budget (unlimited) writes a presence flag only.
func (b *Budget) Save(w *snap.Writer) {
	if b == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.Int(b.remaining)
	w.Int(b.spent)
}

// Load restores a budget saved by Save into b. Loading a nil-saved
// budget into a live one (or vice versa) is a shape mismatch the caller
// owns; here a nil receiver simply consumes the flag.
func (b *Budget) Load(r *snap.Reader) error {
	present := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if !present || b == nil {
		return nil
	}
	b.remaining = r.Int()
	b.spent = r.Int()
	return r.Err()
}
