// Package retry is the resilient retry-policy framework shared by the
// simulated cloud client (internal/cloud) and the live-mode SDK
// (internal/sdk). A Policy decides which errors are worth reissuing,
// bounds the attempt count, shapes the backoff curve (fixed or
// exponential, with optional jitter and a delay cap), enforces a per-op
// deadline, and can draw on a shared retry Budget so that a fleet of
// workers cannot collectively melt down a struggling service.
//
// The package is deliberately free of clocks and sleeps: callers own time
// (virtual time in the simulation, wall time in live mode) and ask the
// policy two questions per failure — ShouldRetry and Delay. Randomness for
// jitter is likewise passed in, so the simulation's deterministic PRNG and
// live mode's math/rand both plug in unchanged, and a zero-jitter policy
// never draws random numbers at all (which keeps fault-free simulations
// bit-identical to the pre-retry-framework behaviour).
package retry

import (
	"math"
	"time"

	"azurebench/internal/storecommon"
)

// Policy controls how an operation is retried.
type Policy struct {
	// MaxAttempts bounds total attempts (first try + retries). <= 0 means
	// a single attempt, i.e. no retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// Multiplier grows the backoff per retry (1 or 0 = fixed backoff).
	Multiplier float64
	// MaxDelay caps the grown backoff (0 = uncapped).
	MaxDelay time.Duration
	// Jitter spreads each backoff multiplicatively by ±Jitter (e.g. 0.2
	// turns d into a uniform draw from [0.8d, 1.2d]). 0 disables jitter
	// and the policy never consumes randomness.
	Jitter float64
	// Deadline bounds the whole operation including backoff sleeps: once
	// the elapsed time reaches it no further retry is attempted. 0 means
	// no deadline.
	Deadline time.Duration
	// Classify reports whether an error is worth retrying. nil defaults
	// to storecommon.IsRetriable (throttles + transient faults).
	Classify func(error) bool
	// Budget, when non-nil, is a shared pool of retries; every retry
	// spends one token and an empty budget stops retrying even when
	// attempts remain. Workers sharing one Budget cannot collectively
	// storm a degraded service.
	Budget *Budget
	// OnBackoff, when non-nil, is invoked by executors just before each
	// backoff sleep with the retry ordinal (1 for the first retry) and the
	// chosen delay — the observability hook through which backoff time is
	// attributed to retry-backoff trace spans (simulation) or counted in
	// client stats (live SDK). It must not block.
	OnBackoff func(retries int, d time.Duration)
}

// Paper returns the retry discipline of the source paper's benchmark:
// sleep a fixed backoff and reissue, but only for ServerBusy throttling.
// The attempt cap is a safety net against a limiter that never recovers —
// large enough that no converging workload ever hits it.
func Paper(backoff time.Duration) Policy {
	return Policy{
		MaxAttempts: 10000,
		BaseDelay:   backoff,
		Multiplier:  1,
		Classify:    storecommon.IsServerBusy,
	}
}

// Resilient returns a production-style policy: exponential backoff with
// jitter, capped delay, bounded attempts and a per-op deadline, retrying
// both throttles and transient faults.
func Resilient() Policy {
	return Policy{
		MaxAttempts: 8,
		BaseDelay:   250 * time.Millisecond,
		Multiplier:  2,
		MaxDelay:    8 * time.Second,
		Jitter:      0.2,
		Deadline:    2 * time.Minute,
	}
}

// classify applies Classify or its default.
func (p Policy) classify(err error) bool {
	if p.Classify != nil {
		return p.Classify(err)
	}
	return storecommon.IsRetriable(err)
}

// ShouldRetry reports whether, after the (retries+1)-th attempt failed
// with err at elapsed time since the operation began, another attempt
// should be made. It spends a budget token when it returns true.
func (p Policy) ShouldRetry(retries int, elapsed time.Duration, err error) bool {
	if err == nil || !p.classify(err) {
		return false
	}
	if retries+1 >= p.MaxAttempts {
		return false
	}
	if p.Deadline > 0 && elapsed >= p.Deadline {
		return false
	}
	return p.Budget.spend()
}

// Delay returns the backoff before the (retries+1)-th retry. rnd supplies
// a uniform draw from [0, 1) for jitter; it is only called when Jitter is
// non-zero, so deterministic callers pay no PRNG perturbation for
// jitter-free policies. A nil rnd disables jitter.
func (p Policy) Delay(retries int, rnd func() float64) time.Duration {
	d := float64(p.BaseDelay)
	if m := p.Multiplier; m > 1 && retries > 0 {
		d *= math.Pow(m, float64(retries))
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 && rnd != nil {
		d *= 1 + p.Jitter*(2*rnd()-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Budget is a shared pool of retry tokens. The zero value and nil both
// mean "unlimited". It is not safe for concurrent use from real threads;
// in the simulation only one process runs at a time, and live-mode users
// should wrap it themselves if sharing across goroutines.
type Budget struct {
	remaining int
	spent     int
}

// NewBudget returns a budget of n retries shared by everyone holding it.
func NewBudget(n int) *Budget { return &Budget{remaining: n} }

// Remaining returns the unspent tokens.
func (b *Budget) Remaining() int {
	if b == nil {
		return math.MaxInt
	}
	return b.remaining
}

// Spent returns how many retries the budget has funded.
func (b *Budget) Spent() int {
	if b == nil {
		return 0
	}
	return b.spent
}

// spend takes one token, reporting whether one was available.
func (b *Budget) spend() bool {
	if b == nil {
		return true
	}
	if b.remaining <= 0 {
		return false
	}
	b.remaining--
	b.spent++
	return true
}
