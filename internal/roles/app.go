package roles

import (
	"fmt"
	"time"

	"azurebench/internal/cloud"
	"azurebench/internal/fabric"
	"azurebench/internal/model"
	"azurebench/internal/payload"
)

// BagOfTasksConfig describes a Figure-3 application: a web role that
// submits tasks and monitors progress, and worker roles that drain the
// shared task pool.
type BagOfTasksConfig struct {
	Cloud    *cloud.Cloud
	Name     string
	Workers  int
	WorkerVM model.VMSize
	WebVM    model.VMSize

	// Tasks are the work items the web role submits.
	Tasks []payload.Payload
	// Visibility is the task claim duration (0 = 30 s default). A worker
	// that recycles mid-task loses its claim and the task reappears.
	Visibility time.Duration
	// Work processes one task on a worker; it may sleep (compute) and use
	// the storage client.
	Work func(ctx *fabric.Context, task Task) error
}

// BagOfTasksResult summarises a completed run.
type BagOfTasksResult struct {
	Completed      int
	Elapsed        time.Duration
	WorkerRestarts int
}

// queue names derived from the application name.
func (cfg *BagOfTasksConfig) taskQueue() string { return cfg.Name + "-tasks" }
func (cfg *BagOfTasksConfig) doneQueue() string { return cfg.Name + "-done" }
func (cfg *BagOfTasksConfig) stopQueue() string { return cfg.Name + "-stop" }

// RunBagOfTasks deploys the application, runs the simulation to
// completion, and reports the outcome. It must be called from outside the
// simulation (it drives env.Run itself).
//
// Termination uses a dedicated stop queue rather than an in-band sentinel
// on the task queue — the paper's recommendation, since queue storage does
// not guarantee FIFO and an in-band sentinel could overtake real tasks.
func RunBagOfTasks(cfg BagOfTasksConfig) (BagOfTasksResult, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.WorkerVM.Name == "" {
		cfg.WorkerVM = model.Small
	}
	if cfg.WebVM.Name == "" {
		cfg.WebVM = model.Small
	}
	env := cfg.Cloud.Env()
	start := env.Now()
	pool := NewTaskPool(cfg.taskQueue(), cfg.Visibility)
	indicator := NewIndicator(cfg.doneQueue())

	var runErr error
	fail := func(err error) {
		if runErr == nil && err != nil {
			runErr = err
		}
	}

	web := func(ctx *fabric.Context) {
		p, cl := ctx.Proc, ctx.Client
		if err := EnsureQueues(p, cl, cfg.taskQueue(), cfg.doneQueue(), cfg.stopQueue()); err != nil {
			fail(err)
			return
		}
		for _, body := range cfg.Tasks {
			if err := pool.Submit(p, cl, body); err != nil {
				fail(err)
				return
			}
		}
		if err := indicator.AwaitCount(p, cl, len(cfg.Tasks)); err != nil {
			fail(err)
			return
		}
		// All tasks accounted for: release the workers.
		for i := 0; i < cfg.Workers; i++ {
			if _, err := cl.WithRetry(p, func() error {
				_, err := cl.PutMessage(p, cfg.stopQueue(), payload.String("stop"))
				return err
			}); err != nil {
				fail(err)
				return
			}
		}
	}

	worker := func(ctx *fabric.Context) {
		p, cl := ctx.Proc, ctx.Client
		if err := EnsureQueues(p, cl, cfg.taskQueue(), cfg.doneQueue(), cfg.stopQueue()); err != nil {
			fail(err)
			return
		}
		for {
			ctx.Checkpoint()
			task, ok, err := pool.TryNext(p, cl)
			if err != nil {
				fail(err)
				return
			}
			if ok {
				if err := cfg.Work(ctx, task); err != nil {
					fail(err)
					return
				}
				if err := pool.Complete(p, cl, task); err != nil {
					fail(err)
					return
				}
				if err := indicator.Signal(p, cl); err != nil {
					fail(err)
					return
				}
				continue
			}
			// Idle: check for the stop signal, then back off.
			if _, stop, err := cl.GetMessage(p, cfg.stopQueue(), time.Hour); err == nil && stop {
				return
			}
			p.Sleep(pool.pollInterval())
		}
	}

	d := fabric.Deploy(cfg.Cloud, cfg.Name,
		fabric.RoleConfig{Name: "web", Kind: fabric.WebRole, VM: cfg.WebVM, Count: 1, Run: web},
		fabric.RoleConfig{Name: "worker", Kind: fabric.WorkerRole, VM: cfg.WorkerVM, Count: cfg.Workers, Run: worker},
	)
	env.Run()

	res := BagOfTasksResult{Elapsed: env.Now() - start}
	for _, inst := range d.InstancesOf("worker") {
		res.WorkerRestarts += inst.Restarts()
	}
	if n, err := cfg.Cloud.Queue.ApproximateCount(cfg.doneQueue()); err == nil {
		res.Completed = n
	}
	if runErr != nil {
		return res, fmt.Errorf("%s: %w", cfg.Name, runErr)
	}
	return res, nil
}

func (tp *TaskPool) pollInterval() time.Duration {
	if tp.Poll > 0 {
		return tp.Poll
	}
	return DefaultPollInterval
}
