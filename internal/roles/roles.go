// Package roles implements the paper's generic application framework for
// scientific applications on Azure (Section III, Figure 3): a task
// assignment queue fed by a web role, worker roles that poll it, a
// termination indicator queue for progress/termination signalling, and the
// queue-message barrier of Algorithm 2 — including the subtlety the paper
// describes, where barrier messages from earlier phases must be accounted
// for rather than deleted.
package roles

import (
	"time"

	"azurebench/internal/cloud"
	"azurebench/internal/payload"
	"azurebench/internal/sim"
	"azurebench/internal/storecommon"
)

// DefaultPollInterval is how long pollers sleep between queue probes (the
// paper: "each worker sleeps for a second before issuing the next
// request", to avoid throttling the queue).
const DefaultPollInterval = time.Second

// Barrier is the queue-based barrier of Algorithm 2. All workers share one
// synchronization queue; each Wait puts one message and then polls the
// approximate message count until workers×phase messages have accumulated.
// Messages are never deleted — each worker instead tracks how many phases
// it has completed (the synccount of Algorithm 2), because deleting
// messages would strand workers still inside the previous phase.
type Barrier struct {
	Queue   string
	Workers int
	Poll    time.Duration // defaults to DefaultPollInterval

	phase int // completed synchronisation phases (synccount)
}

// NewBarrier returns a barrier for the given worker count over queue.
// Each worker must own its Barrier value (it carries the worker-local
// phase counter).
func NewBarrier(queue string, workers int) *Barrier {
	return &Barrier{Queue: queue, Workers: workers, Poll: DefaultPollInterval}
}

// Phase returns the number of completed synchronisation phases.
func (b *Barrier) Phase() int { return b.phase }

// Wait blocks until all workers have arrived at this barrier phase.
func (b *Barrier) Wait(p *sim.Proc, cl *cloud.Client) error {
	b.phase++
	if _, err := cl.WithRetry(p, func() error {
		_, err := cl.PutMessage(p, b.Queue, payload.String("barrier"))
		return err
	}); err != nil {
		return err
	}
	target := b.Workers * b.phase
	poll := b.Poll
	if poll <= 0 {
		poll = DefaultPollInterval
	}
	for {
		var arrived int
		if _, err := cl.WithRetry(p, func() error {
			var err error
			arrived, err = cl.GetMessageCount(p, b.Queue)
			return err
		}); err != nil {
			return err
		}
		if arrived >= target {
			return nil
		}
		p.Sleep(poll)
	}
}

// Task is one unit of work drawn from a task queue.
type Task struct {
	ID         string
	Body       payload.Payload
	popReceipt string
}

// TaskPool wraps a queue used as a shared task pool with built-in fault
// tolerance: a task claimed by a worker that dies reappears after the
// visibility timeout and is picked up by another worker.
type TaskPool struct {
	Queue      string
	Visibility time.Duration // claim duration; 0 = service default (30 s)
	Poll       time.Duration // sleep between empty polls
}

// NewTaskPool returns a pool over queue with the given claim visibility.
func NewTaskPool(queue string, visibility time.Duration) *TaskPool {
	return &TaskPool{Queue: queue, Visibility: visibility, Poll: DefaultPollInterval}
}

// Submit enqueues one task.
func (tp *TaskPool) Submit(p *sim.Proc, cl *cloud.Client, body payload.Payload) error {
	_, err := cl.WithRetry(p, func() error {
		_, err := cl.PutMessage(p, tp.Queue, body)
		return err
	})
	return err
}

// TryNext claims a task without waiting; ok is false when no task is
// visible right now.
func (tp *TaskPool) TryNext(p *sim.Proc, cl *cloud.Client) (Task, bool, error) {
	var task Task
	var ok bool
	_, err := cl.WithRetry(p, func() error {
		msg, got, err := cl.GetMessage(p, tp.Queue, tp.Visibility)
		if err != nil {
			return err
		}
		if got {
			task = Task{ID: msg.ID, Body: msg.Body, popReceipt: msg.PopReceipt}
			ok = true
		}
		return nil
	})
	return task, ok, err
}

// Complete deletes a finished task from the pool. It must be called before
// the claim's visibility timeout expires, or another worker may already
// have re-claimed the task (the error surfaces as a pop-receipt mismatch).
func (tp *TaskPool) Complete(p *sim.Proc, cl *cloud.Client, task Task) error {
	_, err := cl.WithRetry(p, func() error {
		return cl.DeleteMessage(p, tp.Queue, task.ID, task.popReceipt)
	})
	return err
}

// Indicator is the termination indicator queue of Figure 3: workers put a
// message per completed unit, the web role polls the count to drive the
// user interface and detect termination.
type Indicator struct {
	Queue string
	Poll  time.Duration
}

// NewIndicator returns an indicator over queue.
func NewIndicator(queue string) *Indicator {
	return &Indicator{Queue: queue, Poll: DefaultPollInterval}
}

// Signal records one completed unit.
func (in *Indicator) Signal(p *sim.Proc, cl *cloud.Client) error {
	_, err := cl.WithRetry(p, func() error {
		_, err := cl.PutMessage(p, in.Queue, payload.String("done"))
		return err
	})
	return err
}

// Count returns the number of completions signalled so far.
func (in *Indicator) Count(p *sim.Proc, cl *cloud.Client) (int, error) {
	var n int
	_, err := cl.WithRetry(p, func() error {
		var err error
		n, err = cl.GetMessageCount(p, in.Queue)
		return err
	})
	return n, err
}

// AwaitCount polls until at least target completions have been signalled.
func (in *Indicator) AwaitCount(p *sim.Proc, cl *cloud.Client, target int) error {
	poll := in.Poll
	if poll <= 0 {
		poll = DefaultPollInterval
	}
	for {
		n, err := in.Count(p, cl)
		if err != nil {
			return err
		}
		if n >= target {
			return nil
		}
		p.Sleep(poll)
	}
}

// EnsureQueues creates the framework queues if needed (idempotent).
func EnsureQueues(p *sim.Proc, cl *cloud.Client, queues ...string) error {
	for _, q := range queues {
		if _, err := cl.WithRetry(p, func() error {
			_, err := cl.CreateQueueIfNotExists(p, q)
			return err
		}); err != nil && !storecommon.IsConflict(err) {
			return err
		}
	}
	return nil
}
