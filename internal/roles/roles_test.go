package roles

import (
	"fmt"
	"testing"
	"time"

	"azurebench/internal/cloud"
	"azurebench/internal/fabric"
	"azurebench/internal/model"
	"azurebench/internal/payload"
	"azurebench/internal/sim"
)

func newCloud() (*sim.Env, *cloud.Cloud) {
	env := sim.NewEnv(1)
	return env, cloud.New(env, model.Default())
}

func TestBarrierSynchronizesWorkers(t *testing.T) {
	env, c := newCloud()
	const workers = 6
	setup := c.NewClient("setup", model.Small)
	env.Go("setup", func(p *sim.Proc) {
		if err := EnsureQueues(p, setup, "sync-q"); err != nil {
			t.Error(err)
		}
	})
	env.Run()

	var crossed []time.Duration
	var slowest time.Duration
	for w := 0; w < workers; w++ {
		w := w
		cl := c.NewClient(fmt.Sprintf("vm%d", w), model.Small)
		env.Go(fmt.Sprintf("w%d", w), func(p *sim.Proc) {
			b := NewBarrier("sync-q", workers)
			// Straggler pattern: worker w arrives w minutes late.
			arrive := time.Duration(w) * time.Minute
			p.Sleep(arrive)
			if arrive > slowest {
				slowest = arrive
			}
			if err := b.Wait(p, cl); err != nil {
				t.Error(err)
				return
			}
			crossed = append(crossed, p.Now())
		})
	}
	env.Run()
	if len(crossed) != workers {
		t.Fatalf("%d workers crossed", len(crossed))
	}
	for _, at := range crossed {
		if at < slowest {
			t.Fatalf("a worker crossed at %v, before the slowest arrived at %v", at, slowest)
		}
	}
}

func TestBarrierMultiplePhases(t *testing.T) {
	// The Algorithm 2 subtlety: phase 2 must not be confused by phase 1's
	// residual messages.
	env, c := newCloud()
	const workers, phases = 4, 3
	setup := c.NewClient("setup", model.Small)
	env.Go("setup", func(p *sim.Proc) {
		if err := EnsureQueues(p, setup, "sync-q"); err != nil {
			t.Error(err)
		}
	})
	env.Run()
	phaseDone := make([]int, phases+1)
	for w := 0; w < workers; w++ {
		w := w
		cl := c.NewClient(fmt.Sprintf("vm%d", w), model.Small)
		env.Go(fmt.Sprintf("w%d", w), func(p *sim.Proc) {
			b := NewBarrier("sync-q", workers)
			for phase := 1; phase <= phases; phase++ {
				p.Sleep(time.Duration(w*3) * time.Second) // stagger
				if err := b.Wait(p, cl); err != nil {
					t.Error(err)
					return
				}
				// No worker may be more than one phase behind when we pass.
				phaseDone[phase]++
				for q := 1; q < phase; q++ {
					if phaseDone[q] != workers {
						t.Errorf("crossed phase %d while phase %d incomplete (%d/%d)",
							phase, q, phaseDone[q], workers)
					}
				}
			}
			if b.Phase() != phases {
				t.Errorf("phase counter = %d", b.Phase())
			}
		})
	}
	env.Run()
	if n, _ := c.Queue.ApproximateCount("sync-q"); n != workers*phases {
		t.Fatalf("barrier queue holds %d messages, want %d", n, workers*phases)
	}
}

func TestTaskPoolClaimCompleteLifecycle(t *testing.T) {
	env, c := newCloud()
	cl := c.NewClient("vm0", model.Small)
	env.Go("main", func(p *sim.Proc) {
		if err := EnsureQueues(p, cl, "pool-q"); err != nil {
			t.Error(err)
			return
		}
		tp := NewTaskPool("pool-q", time.Minute)
		if err := tp.Submit(p, cl, payload.String("job1")); err != nil {
			t.Error(err)
			return
		}
		task, ok, err := tp.TryNext(p, cl)
		if err != nil || !ok {
			t.Errorf("TryNext = %v, %v", ok, err)
			return
		}
		if string(task.Body.Materialize()) != "job1" {
			t.Error("task body mismatch")
		}
		// While claimed, no other worker sees it.
		if _, ok, _ := tp.TryNext(p, cl); ok {
			t.Error("claimed task visible to second claimer")
		}
		if err := tp.Complete(p, cl, task); err != nil {
			t.Error(err)
		}
		if _, ok, _ := tp.TryNext(p, cl); ok {
			t.Error("completed task reappeared")
		}
	})
	env.Run()
}

func TestTaskReappearsAfterClaimExpiry(t *testing.T) {
	env, c := newCloud()
	cl := c.NewClient("vm0", model.Small)
	env.Go("main", func(p *sim.Proc) {
		if err := EnsureQueues(p, cl, "pool-q"); err != nil {
			t.Error(err)
			return
		}
		tp := NewTaskPool("pool-q", 5*time.Second)
		if err := tp.Submit(p, cl, payload.String("job")); err != nil {
			t.Error(err)
			return
		}
		if _, ok, err := tp.TryNext(p, cl); err != nil || !ok {
			t.Errorf("claim failed: %v %v", ok, err)
			return
		}
		// Simulated worker death: never Complete. After the visibility
		// timeout the task is claimable again.
		p.Sleep(6 * time.Second)
		task, ok, err := tp.TryNext(p, cl)
		if err != nil || !ok {
			t.Errorf("task did not reappear: %v %v", ok, err)
			return
		}
		if err := tp.Complete(p, cl, task); err != nil {
			t.Error(err)
		}
	})
	env.Run()
}

func TestIndicatorCountsCompletions(t *testing.T) {
	env, c := newCloud()
	cl := c.NewClient("vm0", model.Small)
	env.Go("main", func(p *sim.Proc) {
		if err := EnsureQueues(p, cl, "done-q"); err != nil {
			t.Error(err)
			return
		}
		in := NewIndicator("done-q")
		for i := 0; i < 5; i++ {
			if err := in.Signal(p, cl); err != nil {
				t.Error(err)
				return
			}
		}
		if n, err := in.Count(p, cl); err != nil || n != 5 {
			t.Errorf("count = %d, %v", n, err)
		}
		if err := in.AwaitCount(p, cl, 5); err != nil {
			t.Error(err)
		}
	})
	env.Run()
}

func TestRunBagOfTasksCompletesAllWork(t *testing.T) {
	env, c := newCloud()
	var tasks []payload.Payload
	const n = 40
	for i := 0; i < n; i++ {
		tasks = append(tasks, payload.String(fmt.Sprintf("task-%02d", i)))
	}
	processed := map[string]int{}
	res, err := RunBagOfTasks(BagOfTasksConfig{
		Cloud:      c,
		Name:       "bot",
		Workers:    4,
		Tasks:      tasks,
		Visibility: 10 * time.Minute,
		Work: func(ctx *fabric.Context, task Task) error {
			ctx.Proc.Sleep(3 * time.Second) // simulated compute
			processed[string(task.Body.Materialize())]++
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != n {
		t.Fatalf("completed = %d, want %d", res.Completed, n)
	}
	if len(processed) != n {
		t.Fatalf("distinct tasks processed = %d, want %d", len(processed), n)
	}
	for body, times := range processed {
		if times != 1 {
			t.Fatalf("task %q processed %d times", body, times)
		}
	}
	if env.Live() != 0 {
		t.Fatalf("%d processes still live (workers not released?)", env.Live())
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time recorded")
	}
}

func TestRunBagOfTasksSurvivesWorkerRecycle(t *testing.T) {
	env, c := newCloud()
	var tasks []payload.Payload
	const n = 12
	for i := 0; i < n; i++ {
		tasks = append(tasks, payload.String(fmt.Sprintf("t%d", i)))
	}
	// Kill the first worker once, mid-stream, via the fabric controller.
	killed := false
	res, err := RunBagOfTasks(BagOfTasksConfig{
		Cloud:      c,
		Name:       "faulty",
		Workers:    3,
		Tasks:      tasks,
		Visibility: 30 * time.Second,
		Work: func(ctx *fabric.Context, task Task) error {
			if !killed && ctx.Instance.ID() == 0 {
				killed = true
				// Die holding the claim: the entry point aborts here and
				// the task must reappear for someone else.
				ctx.Instance.RequestSelfRecycle()
				ctx.Checkpoint()
			}
			ctx.Proc.Sleep(2 * time.Second)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("fault was never injected")
	}
	if res.WorkerRestarts != 1 {
		t.Fatalf("restarts = %d, want 1", res.WorkerRestarts)
	}
	if res.Completed < n {
		t.Fatalf("completed = %d, want >= %d (the dropped task must be redone)", res.Completed, n)
	}
	_ = env
}
