package metrics

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Fatal("zero histogram not empty")
	}
	for _, d := range []time.Duration{time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond} {
		h.Observe(d)
	}
	if h.Count() != 3 || h.Total() != 6*time.Millisecond {
		t.Fatalf("count/total = %d/%v", h.Count(), h.Total())
	}
	if h.Mean() != 2*time.Millisecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != time.Millisecond || h.Max() != 3*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	// Negative observations clamp to zero rather than corrupting buckets.
	h.Observe(-time.Second)
	if h.Min() != 0 {
		t.Fatalf("negative sample min = %v", h.Min())
	}
}

func TestHistogramBucketLayout(t *testing.T) {
	// Sub-floor samples land in bucket 0.
	if got := bucketOf(0); got != 0 {
		t.Fatalf("bucketOf(0) = %d", got)
	}
	if got := bucketOf(histFloor - 1); got != 0 {
		t.Fatalf("bucketOf(floor-1) = %d", got)
	}
	// Boundaries: each bucket's lo maps into that bucket, hi into the next.
	for i := 1; i < histBuckets-1; i++ {
		lo, hi := BucketBounds(i)
		if got := bucketOf(lo); got != i {
			t.Fatalf("bucketOf(lo of %d) = %d", i, got)
		}
		if got := bucketOf(hi - 1); got != i {
			t.Fatalf("bucketOf(hi-1 of %d) = %d", i, got)
		}
	}
	// Durations beyond the top bucket clamp instead of overflowing.
	if got := bucketOf(1 << 62); got != histBuckets-1 {
		t.Fatalf("huge duration bucket = %d", got)
	}
}

func TestHistogramPercentileWithinBucket(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond) // all in one bucket
	}
	for _, p := range []float64{50, 95, 99, 100} {
		got := h.Percentile(p)
		// Accuracy contract: within the sample's log-2 bucket, clamped to
		// observed min/max — here min == max, so exact.
		if got != time.Millisecond {
			t.Fatalf("p%v = %v", p, got)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Millisecond)
	b.Observe(4 * time.Millisecond)
	b.Observe(8 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 3 || a.Total() != 13*time.Millisecond {
		t.Fatalf("merged count/total = %d/%v", a.Count(), a.Total())
	}
	if a.Min() != time.Millisecond || a.Max() != 8*time.Millisecond {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	// Merge equals observing the union directly (same fixed layout).
	var u Histogram
	for _, d := range []time.Duration{time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond} {
		u.Observe(d)
	}
	if a != u {
		t.Fatalf("merge diverged from direct observation:\n%+v\n%+v", a, u)
	}
	// Merging nil or empty is a no-op.
	before := a
	a.Merge(nil)
	a.Merge(&Histogram{})
	if a != before {
		t.Fatal("nil/empty merge mutated histogram")
	}
}

func TestHistogramBucketsAndJSON(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	h.Observe(time.Millisecond)
	h.Observe(time.Second)
	bks := h.Buckets()
	if len(bks) != 2 {
		t.Fatalf("buckets = %+v", bks)
	}
	var total uint64
	for _, b := range bks {
		total += b.Count
	}
	if total != h.Count() {
		t.Fatalf("bucket counts sum to %d, n = %d", total, h.Count())
	}
	data, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Count   uint64 `json:"count"`
		SumNs   int64  `json:"sum_ns"`
		P50Ns   int64  `json:"p50_ns"`
		Buckets []struct {
			LoNs  int64  `json:"lo_ns"`
			Count uint64 `json:"count"`
		} `json:"buckets"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("export not JSON: %v", err)
	}
	if out.Count != 3 || out.SumNs != int64(h.Total()) || len(out.Buckets) != 2 {
		t.Fatalf("export = %+v", out)
	}
	if out.P50Ns <= 0 {
		t.Fatalf("p50 = %d", out.P50Ns)
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	s := h.Summary()
	for _, want := range []string{"n=1", "mean=1ms", "p50=", "max=1ms"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q: %q", want, s)
		}
	}
}

func TestCountersMerge(t *testing.T) {
	var a, b Counters
	a.Add("retries", 3)
	a.Add("faults", 1)
	b.Add("faults", 2)
	b.Add("timeouts", 5)
	a.Merge(&b)
	if got := a.Get("faults"); got != 3 {
		t.Fatalf("faults = %v", got)
	}
	if got := a.Get("timeouts"); got != 5 {
		t.Fatalf("timeouts = %v", got)
	}
	// Existing names keep their order; new names append in other's order.
	names := a.Names()
	want := []string{"retries", "faults", "timeouts"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	// Merging nil is a no-op.
	a.Merge(nil)
	if len(a.Names()) != 3 {
		t.Fatal("nil merge mutated counters")
	}
}
