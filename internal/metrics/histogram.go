package metrics

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"time"
)

// Histogram bucket layout: bucket 0 holds durations below histFloor;
// bucket i (i >= 1) holds [histFloor<<(i-1), histFloor<<i). Every
// Histogram shares the layout, which is what makes Merge a plain
// element-wise sum.
const (
	histFloor   = time.Microsecond
	histBuckets = 48 // top bucket starts at ~1.6 days; beyond that clamps
)

// Histogram is a fixed log-bucket latency histogram: constant memory
// regardless of sample count, mergeable across shards, and exportable. It
// replaces the raw-sample Dist where counts grow unboundedly (live
// servers, long traces); Dist remains the right tool for bounded
// experiment samples where exact percentiles matter. The zero value is
// ready to use. Histogram is not safe for concurrent use; wrap it in a
// mutex for live mode.
type Histogram struct {
	counts [histBuckets]uint64
	n      uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if d < histFloor {
		return 0
	}
	i := bits.Len64(uint64(d / histFloor))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// BucketBounds returns bucket i's half-open range [lo, hi); the top
// bucket's hi is the maximum duration.
func BucketBounds(i int) (lo, hi time.Duration) {
	switch {
	case i <= 0:
		return 0, histFloor
	case i >= histBuckets-1:
		return histFloor << (histBuckets - 2), time.Duration(1<<63 - 1)
	default:
		return histFloor << (i - 1), histFloor << i
	}
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)]++
	if h.n == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.n++
	h.sum += d
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.n == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.n }

// Total returns the sum of all samples.
func (h *Histogram) Total() time.Duration { return h.sum }

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Min returns the smallest sample.
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return h.max }

// Percentile returns the p-th percentile (0 < p <= 100) by nearest rank
// over buckets, interpolated at the bucket midpoint and clamped to the
// observed min/max — accurate to within one log bucket (a factor of 2).
func (h *Histogram) Percentile(p float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := uint64(p / 100 * float64(h.n))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			lo, hi := BucketBounds(i)
			mid := lo + (hi-lo)/2
			if i == histBuckets-1 {
				mid = h.max
			}
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return mid
		}
	}
	return h.max
}

// Bucket is one non-empty histogram bucket in export form.
type Bucket struct {
	Lo    time.Duration `json:"lo_ns"`
	Count uint64        `json:"count"`
}

// Buckets returns the non-empty buckets in ascending order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, _ := BucketBounds(i)
		out = append(out, Bucket{Lo: lo, Count: c})
	}
	return out
}

// CumBucket is one bucket of a cumulative (Prometheus-style) view: Count
// samples were at or below Hi. The top bucket's Hi is the maximum
// duration, which exporters render as +Inf.
type CumBucket struct {
	Hi    time.Duration
	Count uint64
}

// CumulativeBuckets translates the fixed log2 layout into cumulative
// le-buckets over the full layout (empty buckets included), ascending.
// The final bucket's Count always equals Count().
func (h *Histogram) CumulativeBuckets() []CumBucket {
	out := make([]CumBucket, histBuckets)
	var cum uint64
	for i, c := range h.counts {
		cum += c
		_, hi := BucketBounds(i)
		out[i] = CumBucket{Hi: hi, Count: cum}
	}
	return out
}

// Summary renders a one-line histogram summary.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v max=%v",
		h.n, h.Mean().Round(time.Microsecond),
		h.Percentile(50).Round(time.Microsecond),
		h.Percentile(95).Round(time.Microsecond),
		h.max.Round(time.Microsecond))
}

// histogramJSON is the export schema (durations in integer nanoseconds).
type histogramJSON struct {
	Count   uint64   `json:"count"`
	SumNs   int64    `json:"sum_ns"`
	MinNs   int64    `json:"min_ns"`
	MaxNs   int64    `json:"max_ns"`
	P50Ns   int64    `json:"p50_ns"`
	P95Ns   int64    `json:"p95_ns"`
	P99Ns   int64    `json:"p99_ns"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// MarshalJSON exports the histogram with summary percentiles and its
// non-empty buckets.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{
		Count:   h.n,
		SumNs:   int64(h.sum),
		MinNs:   int64(h.min),
		MaxNs:   int64(h.max),
		P50Ns:   int64(h.Percentile(50)),
		P95Ns:   int64(h.Percentile(95)),
		P99Ns:   int64(h.Percentile(99)),
		Buckets: h.Buckets(),
	})
}
