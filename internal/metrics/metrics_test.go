package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestDistBasics(t *testing.T) {
	var d Dist
	if d.Count() != 0 || d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 {
		t.Fatal("zero Dist not empty")
	}
	for _, v := range []time.Duration{3, 1, 2} {
		d.Add(v * time.Second)
	}
	if d.Count() != 3 || d.Total() != 6*time.Second {
		t.Fatalf("count/total = %d/%v", d.Count(), d.Total())
	}
	if d.Mean() != 2*time.Second {
		t.Fatalf("mean = %v", d.Mean())
	}
	if d.Min() != time.Second || d.Max() != 3*time.Second {
		t.Fatalf("min/max = %v/%v", d.Min(), d.Max())
	}
}

func TestDistPercentiles(t *testing.T) {
	var d Dist
	for i := 1; i <= 100; i++ {
		d.Add(time.Duration(i))
	}
	if got := d.Percentile(50); got != 50 {
		t.Fatalf("p50 = %v", got)
	}
	if got := d.Percentile(95); got != 95 {
		t.Fatalf("p95 = %v", got)
	}
	if got := d.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	if got := d.Percentile(0.5); got != 1 {
		t.Fatalf("p0.5 = %v", got)
	}
}

func TestDistAddAfterSortedQuery(t *testing.T) {
	var d Dist
	d.Add(5)
	_ = d.Min() // forces sort
	d.Add(1)
	if d.Min() != 1 {
		t.Fatal("Add after sorted query not reflected")
	}
}

func TestDistStddev(t *testing.T) {
	var d Dist
	for _, v := range []time.Duration{2, 4, 4, 4, 5, 5, 7, 9} {
		d.Add(v * time.Second)
	}
	// Known sample stddev ~ 2.138 s.
	if got := d.Stddev().Seconds(); math.Abs(got-2.138) > 0.01 {
		t.Fatalf("stddev = %v", got)
	}
}

func TestDistMerge(t *testing.T) {
	var a, b Dist
	a.Add(1)
	b.Add(3)
	a.Merge(&b)
	if a.Count() != 2 || a.Total() != 4 {
		t.Fatalf("merged = %d/%v", a.Count(), a.Total())
	}
}

func TestDistPercentileProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var d Dist
		vals := make([]time.Duration, len(raw))
		for i, v := range raw {
			vals[i] = time.Duration(v)
			d.Add(time.Duration(v))
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		return d.Min() == vals[0] && d.Max() == vals[len(vals)-1] &&
			d.Percentile(50) >= vals[0] && d.Percentile(50) <= vals[len(vals)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFigureRenderAndCSV(t *testing.T) {
	var f Figure
	f.Title = "Fig X"
	f.XLabel = "workers"
	f.YLabel = "seconds"
	f.AddPoint("put", 1, 10)
	f.AddPoint("put", 2, 5)
	f.AddPoint("get", 1, 20)
	out := f.Render()
	for _, want := range []string{"Fig X", "workers", "put", "get", "10.000", "5.000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// get has no point at x=2: rendered as "-".
	if !strings.Contains(out, "-") {
		t.Fatalf("missing placeholder for absent point:\n%s", out)
	}
	csv := f.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "workers,put,get" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if lines[1] != "1,10,20" || lines[2] != "2,5," {
		t.Fatalf("csv rows = %q", lines[1:])
	}
}

func TestFigureXsSortedUnion(t *testing.T) {
	var f Figure
	f.AddPoint("a", 4, 1)
	f.AddPoint("a", 1, 1)
	f.AddPoint("b", 2, 1)
	xs := f.xs()
	want := []float64{1, 2, 4}
	if len(xs) != 3 {
		t.Fatalf("xs = %v", xs)
	}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("xs = %v", xs)
		}
	}
}

func TestMBps(t *testing.T) {
	if got := MBps(100<<20, 2*time.Second); math.Abs(got-50) > 1e-9 {
		t.Fatalf("MBps = %v", got)
	}
	if MBps(1, 0) != 0 {
		t.Fatal("zero elapsed should yield 0")
	}
}

func TestSummaryFormat(t *testing.T) {
	var d Dist
	d.Add(time.Millisecond)
	s := d.Summary()
	if !strings.Contains(s, "n=1") || !strings.Contains(s, "mean=1ms") {
		t.Fatalf("summary = %q", s)
	}
}

func TestCountersAccumulateAndOrder(t *testing.T) {
	var c Counters
	c.Add("retries", 3)
	c.Add("faults", 1)
	c.Add("retries", 2)
	if got := c.Get("retries"); got != 5 {
		t.Fatalf("retries = %v", got)
	}
	if got := c.Get("absent"); got != 0 {
		t.Fatalf("absent counter = %v", got)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "retries" || names[1] != "faults" {
		t.Fatalf("names = %v (insertion order lost)", names)
	}
	// The returned slice is a copy: mutating it must not corrupt the set.
	names[0] = "clobbered"
	if c.Names()[0] != "retries" {
		t.Fatal("Names() exposed internal state")
	}
}

func TestCountersRender(t *testing.T) {
	var c Counters
	c.Add("faults injected", 12)
	c.Add("goodput", 41.5)
	out := c.Render()
	for _, want := range []string{"faults injected", "12", "41.500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	var empty Counters
	if empty.Render() != "" {
		t.Fatalf("empty render = %q", empty.Render())
	}
}
