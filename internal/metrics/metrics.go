// Package metrics collects operation timings during experiments and
// renders the paper's figures as aligned text tables and CSV. It is
// deliberately simple: distributions keep raw samples (experiments produce
// at most a few hundred thousand), and figures are series of (x, y)
// points keyed by worker count.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Dist is an online distribution of durations. The zero value is ready to
// use. Dist is not safe for concurrent use (the simulation is cooperative;
// live-mode benchmarks keep one Dist per goroutine and merge).
type Dist struct {
	samples []time.Duration
	sum     time.Duration
	sorted  bool
}

// Add records one sample.
func (d *Dist) Add(v time.Duration) {
	d.samples = append(d.samples, v)
	d.sum += v
	d.sorted = false
}

// Merge folds other into d.
func (d *Dist) Merge(other *Dist) {
	d.samples = append(d.samples, other.samples...)
	d.sum += other.sum
	d.sorted = false
}

// Count returns the number of samples.
func (d *Dist) Count() int { return len(d.samples) }

// Total returns the sum of all samples.
func (d *Dist) Total() time.Duration { return d.sum }

// Mean returns the average sample, or 0 with no samples.
func (d *Dist) Mean() time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	return d.sum / time.Duration(len(d.samples))
}

// Min returns the smallest sample.
func (d *Dist) Min() time.Duration {
	d.ensureSorted()
	if len(d.samples) == 0 {
		return 0
	}
	return d.samples[0]
}

// Max returns the largest sample.
func (d *Dist) Max() time.Duration {
	d.ensureSorted()
	if len(d.samples) == 0 {
		return 0
	}
	return d.samples[len(d.samples)-1]
}

// Percentile returns the p-th percentile (0 < p <= 100) by
// nearest-rank.
func (d *Dist) Percentile(p float64) time.Duration {
	d.ensureSorted()
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return d.samples[rank-1]
}

// Stddev returns the sample standard deviation.
func (d *Dist) Stddev() time.Duration {
	n := len(d.samples)
	if n < 2 {
		return 0
	}
	mean := float64(d.Mean())
	var ss float64
	for _, v := range d.samples {
		diff := float64(v) - mean
		ss += diff * diff
	}
	return time.Duration(math.Sqrt(ss / float64(n-1)))
}

func (d *Dist) ensureSorted() {
	if d.sorted {
		return
	}
	sort.Slice(d.samples, func(i, j int) bool { return d.samples[i] < d.samples[j] })
	d.sorted = true
}

// Summary renders a one-line distribution summary.
func (d *Dist) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v max=%v",
		d.Count(), d.Mean().Round(time.Microsecond),
		d.Percentile(50).Round(time.Microsecond),
		d.Percentile(95).Round(time.Microsecond),
		d.Max().Round(time.Microsecond))
}

// Point is one figure data point.
type Point struct {
	X float64
	Y float64
}

// Series is one labelled curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Figure is the data behind one paper figure: multiple series over a
// shared x axis.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// AddPoint appends (x, y) to the named series, creating it on first use.
func (f *Figure) AddPoint(series string, x, y float64) {
	for i := range f.Series {
		if f.Series[i].Name == series {
			f.Series[i].Add(x, y)
			return
		}
	}
	f.Series = append(f.Series, Series{Name: series, Points: []Point{{X: x, Y: y}}})
}

// xs returns the sorted union of x values across series.
func (f *Figure) xs() []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, s := range f.Series {
		for _, pt := range s.Points {
			if !seen[pt.X] {
				seen[pt.X] = true
				out = append(out, pt.X)
			}
		}
	}
	sort.Float64s(out)
	return out
}

func (f *Figure) lookup(s Series, x float64) (float64, bool) {
	for _, pt := range s.Points {
		if pt.X == x {
			return pt.Y, true
		}
	}
	return 0, false
}

// Render draws the figure as an aligned text table, one row per x value
// and one column per series.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "(y: %s)\n", f.YLabel)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range f.xs() {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			if y, ok := f.lookup(s, x); ok {
				row = append(row, fmt.Sprintf("%.3f", y))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	writeAligned(&b, rows)
	return b.String()
}

// CSV renders the figure as comma-separated values with a header row.
func (f *Figure) CSV() string {
	var b strings.Builder
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	b.WriteString(strings.Join(cols, ","))
	b.WriteByte('\n')
	for _, x := range f.xs() {
		fields := []string{trimFloat(x)}
		for _, s := range f.Series {
			if y, ok := f.lookup(s, x); ok {
				fields = append(fields, fmt.Sprintf("%g", y))
			} else {
				fields = append(fields, "")
			}
		}
		b.WriteString(strings.Join(fields, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func trimFloat(x float64) string {
	if x == math.Trunc(x) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

func writeAligned(b *strings.Builder, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
}

// Counters is an ordered set of named counters — the reporting vehicle
// for fault-injection and retry accounting, where a figure's (x, y) shape
// fits badly. Insertion order is preserved so reports render stably.
type Counters struct {
	names []string
	vals  map[string]float64
}

// Add accumulates v into the named counter, creating it on first use.
func (c *Counters) Add(name string, v float64) {
	if c.vals == nil {
		c.vals = map[string]float64{}
	}
	if _, ok := c.vals[name]; !ok {
		c.names = append(c.names, name)
	}
	c.vals[name] += v
}

// Get returns the counter's value (0 when absent).
func (c *Counters) Get(name string) float64 { return c.vals[name] }

// Merge folds other into c: shared names accumulate, new names append in
// other's insertion order, so merged reports render as stably as their
// inputs.
func (c *Counters) Merge(other *Counters) {
	if other == nil {
		return
	}
	for _, n := range other.names {
		c.Add(n, other.vals[n])
	}
}

// Names returns the counter names in insertion order.
func (c *Counters) Names() []string { return append([]string(nil), c.names...) }

// Render formats the counters as an aligned name/value table.
func (c *Counters) Render() string {
	var b strings.Builder
	rows := make([][]string, 0, len(c.names))
	for _, n := range c.names {
		rows = append(rows, []string{n, trimFloat2(c.vals[n])})
	}
	writeAligned(&b, rows)
	return b.String()
}

// trimFloat2 renders a counter value: integers bare, fractions with
// three decimals.
func trimFloat2(x float64) string {
	if x == math.Trunc(x) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%.3f", x)
}

// MBps converts (bytes, elapsed) into MB/s.
func MBps(bytes int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / elapsed.Seconds() / (1 << 20)
}

// Seconds converts a duration to float seconds (figure-friendly).
func Seconds(d time.Duration) float64 { return d.Seconds() }
