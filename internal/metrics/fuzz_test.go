package metrics

import (
	"encoding/binary"
	"testing"
	"time"
)

// FuzzHistogramMerge checks the algebra live mode depends on: per-worker
// histograms merged at the end must be indistinguishable from one
// histogram that observed every sample, and Merge must commute. The
// fuzzer controls the sample values and how they are split between the
// two shards.
func FuzzHistogramMerge(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 255, 255, 255, 255, 255, 255, 255, 255}, uint8(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17}, uint8(0xaa))

	f.Fuzz(func(t *testing.T, data []byte, split uint8) {
		var h1, h2, all Histogram
		for i := 0; i+8 <= len(data); i += 8 {
			// Signed on purpose: Observe clamps negatives to zero.
			d := time.Duration(binary.LittleEndian.Uint64(data[i:]))
			all.Observe(d)
			if split&(1<<((i/8)%8)) == 0 {
				h1.Observe(d)
			} else {
				h2.Observe(d)
			}
		}

		m12, m21 := h1, h2
		m12.Merge(&h2)
		m21.Merge(&h1)
		if m12 != m21 {
			t.Fatalf("Merge is not commutative:\nh1+h2: %+v\nh2+h1: %+v", m12, m21)
		}
		if m12 != all {
			t.Fatalf("merged shards differ from single histogram:\nmerged: %+v\nall:    %+v", m12, all)
		}

		if m12.Count() != h1.Count()+h2.Count() {
			t.Fatalf("Count = %d, want %d", m12.Count(), h1.Count()+h2.Count())
		}
		if m12.Total() != h1.Total()+h2.Total() {
			t.Fatalf("Total = %v, want %v", m12.Total(), h1.Total()+h2.Total())
		}
		if m12.Count() == 0 {
			return
		}
		if m12.Min() > m12.Max() {
			t.Fatalf("Min %v > Max %v", m12.Min(), m12.Max())
		}
		p50, p95, p99 := m12.Percentile(50), m12.Percentile(95), m12.Percentile(99)
		if p50 > p95 || p95 > p99 {
			t.Fatalf("percentiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
		}
		for _, p := range []time.Duration{p50, p99} {
			if p < m12.Min() || p > m12.Max() {
				t.Fatalf("percentile %v outside observed range [%v, %v]", p, m12.Min(), m12.Max())
			}
		}
	})
}
