package georepl

import (
	"fmt"
	"sort"

	snap "azurebench/internal/snapshot"
)

// SnapshotSection implements snap.Snapshotter.
func (s *Stream) SnapshotSection() string { return "georepl/" + s.cfg.Name }

// Save appends the replication stream's state: sequence counters,
// per-partition sequences, lag accounting, and a metadata fingerprint
// of every pending and in-flight record. Record Apply closures capture
// engine references and cannot be serialized, so a stream can only be
// loaded directly at quiescence (empty log); mid-run checkpoints rely
// on replay verification, where the fingerprints prove the replayed log
// matches the checkpointed one record for record.
func (s *Stream) Save(w *snap.Writer) {
	w.U64(s.nextSeq)
	w.Duration(s.lastSync)
	w.Bool(s.frozen)
	parts := make([]string, 0, len(s.partSeq))
	for k := range s.partSeq {
		parts = append(parts, k)
	}
	sort.Strings(parts)
	w.Int(len(parts))
	for _, k := range parts {
		w.String(k)
		w.U64(s.partSeq[k])
	}
	w.Int(len(s.pending))
	for _, rec := range s.pending {
		saveRecordMeta(w, rec)
	}
	w.Int(len(s.inflight))
	for _, rec := range s.inflight {
		saveRecordMeta(w, rec)
	}
	w.U64(s.stats.Appended)
	w.U64(s.stats.Applied)
	w.U64(s.stats.Batches)
	w.I64(s.stats.BytesShipped)
	w.U64(s.stats.ApplyErrors)
	w.U64(s.stats.BoundExceeded)
	w.U64(s.stats.LostAtFreeze)
	w.U64(s.stats.DroppedFrozen)
	w.Duration(s.stats.MaxLag)
	w.Duration(s.stats.SumLag)
}

// saveRecordMeta writes everything about a record except its apply
// closure.
func saveRecordMeta(w *snap.Writer, rec *Record) {
	w.U64(rec.Seq)
	w.U64(rec.PartSeq)
	w.Duration(rec.At)
	w.String(rec.Service)
	w.String(rec.Part)
	w.String(rec.Op)
	w.I64(rec.Bytes)
	w.String(rec.TraceID)
	w.String(rec.SpanID)
}

// Load restores a stream saved by Save. The snapshot must describe a
// quiescent stream — nothing pending or on the WAN — because the apply
// closures of live records cannot be rebuilt from bytes.
func (s *Stream) Load(r *snap.Reader) error {
	s.nextSeq = r.U64()
	s.lastSync = r.Duration()
	s.frozen = r.Bool()
	np := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	s.partSeq = make(map[string]uint64, np)
	for i := 0; i < np; i++ {
		k := r.String()
		s.partSeq[k] = r.U64()
	}
	nPending := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if nPending != 0 {
		return fmt.Errorf("georepl: snapshot of stream %q has %d pending records; only quiescent streams can be loaded", s.cfg.Name, nPending)
	}
	nInflight := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if nInflight != 0 {
		return fmt.Errorf("georepl: snapshot of stream %q has %d in-flight records; only quiescent streams can be loaded", s.cfg.Name, nInflight)
	}
	s.pending, s.inflight = nil, nil
	s.stats.Appended = r.U64()
	s.stats.Applied = r.U64()
	s.stats.Batches = r.U64()
	s.stats.BytesShipped = r.I64()
	s.stats.ApplyErrors = r.U64()
	s.stats.BoundExceeded = r.U64()
	s.stats.LostAtFreeze = r.U64()
	s.stats.DroppedFrozen = r.U64()
	s.stats.MaxLag = r.Duration()
	s.stats.SumLag = r.Duration()
	return r.Err()
}

// Save appends the failover state machine: the current state, the
// active-region bit, the transition history and the per-service loss
// tally (sorted for byte stability).
func (a *Account) Save(w *snap.Writer) {
	w.U8(uint8(a.state))
	w.Bool(a.secondary)
	w.Int(len(a.transitions))
	for _, tr := range a.transitions {
		w.Duration(tr.At)
		w.U8(uint8(tr.From))
		w.U8(uint8(tr.To))
		w.String(tr.Reason)
	}
	svcs := make([]string, 0, len(a.lost))
	for k := range a.lost {
		svcs = append(svcs, k)
	}
	sort.Strings(svcs)
	w.Int(len(svcs))
	for _, k := range svcs {
		w.String(k)
		w.U64(a.lost[k])
	}
}

// Load restores an account saved by Save.
func (a *Account) Load(r *snap.Reader) error {
	a.state = State(r.U8())
	a.secondary = r.Bool()
	nt := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	a.transitions = a.transitions[:0]
	for i := 0; i < nt; i++ {
		a.transitions = append(a.transitions, Transition{
			At:     r.Duration(),
			From:   State(r.U8()),
			To:     State(r.U8()),
			Reason: r.String(),
		})
	}
	nl := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	a.lost = make(map[string]uint64, nl)
	for i := 0; i < nl; i++ {
		k := r.String()
		a.lost[k] = r.U64()
	}
	return r.Err()
}
