package georepl

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"azurebench/internal/sim"
)

func constDelay(d time.Duration) func(int64) time.Duration {
	return func(int64) time.Duration { return d }
}

func TestStreamShipsInOrder(t *testing.T) {
	env := sim.NewEnv(1)
	var applied []string
	var appliedAt []time.Duration
	mk := func(name string) func() error {
		return func() error {
			applied = append(applied, name)
			appliedAt = append(appliedAt, env.Now())
			return nil
		}
	}
	st, err := NewStream(env, Config{
		Name:     "acct",
		LagBound: 2 * time.Second, // ShipInterval defaults to 500ms
		Delay:    constDelay(100 * time.Millisecond),
	})
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	st.Start()
	env.Go("writer", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			st.Append(p.Now(), "queue", "jobs", "PutMessage", 1024, "", "", mk(fmt.Sprintf("m%d", i)))
			p.Sleep(50 * time.Millisecond)
		}
	})
	env.Run()

	want := []string{"m0", "m1", "m2", "m3", "m4"}
	if len(applied) != len(want) {
		t.Fatalf("applied %d records, want %d", len(applied), len(want))
	}
	for i, name := range want {
		if applied[i] != name {
			t.Errorf("applied[%d] = %s, want %s (log order must be preserved)", i, applied[i], name)
		}
	}
	// One batching window (500ms) coalesces the burst, then one WAN hop.
	if got, want := appliedAt[0], 600*time.Millisecond; got != want {
		t.Errorf("first apply at %v, want %v", got, want)
	}
	s := st.Stats()
	if s.Appended != 5 || s.Applied != 5 || s.Batches != 1 {
		t.Errorf("stats = %+v, want 5 appended, 5 applied, 1 batch", s)
	}
	// LastSyncTime is the newest applied commit time: the m4 append at 200ms.
	if got, want := st.LastSyncTime(), 200*time.Millisecond; got != want {
		t.Errorf("LastSyncTime = %v, want %v", got, want)
	}
	// Oldest record waited the whole window plus the hop.
	if got, want := s.MaxLag, 600*time.Millisecond; got != want {
		t.Errorf("MaxLag = %v, want %v", got, want)
	}
	if s.BoundExceeded != 0 {
		t.Errorf("BoundExceeded = %d with lag under the 2s bound", s.BoundExceeded)
	}
}

func TestStreamPartitionSequencing(t *testing.T) {
	env := sim.NewEnv(1)
	st, err := NewStream(env, Config{Name: "acct", LagBound: time.Second, Delay: constDelay(10 * time.Millisecond)})
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	var recs []*Record
	st.SetOnShip(func(_, _ time.Duration, batch []*Record, _ int64) {
		recs = append(recs, batch...)
	})
	st.Start()
	env.Go("writer", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			st.Append(p.Now(), "table", "orders", "InsertEntity", 256, "", "", func() error { return nil })
			st.Append(p.Now(), "table", "users", "InsertEntity", 256, "", "", func() error { return nil })
		}
	})
	env.Run()
	if len(recs) != 6 {
		t.Fatalf("shipped %d records, want 6", len(recs))
	}
	seq := map[string]uint64{}
	for _, r := range recs {
		if r.PartSeq != seq[r.Part]+1 {
			t.Errorf("partition %q record has PartSeq %d after %d", r.Part, r.PartSeq, seq[r.Part])
		}
		seq[r.Part] = r.PartSeq
	}
	if seq["orders"] != 3 || seq["users"] != 3 {
		t.Errorf("per-partition sequences = %v, want 3 each", seq)
	}
}

func TestStreamFreezeCountsLost(t *testing.T) {
	env := sim.NewEnv(1)
	var applied int
	st, err := NewStream(env, Config{
		Name:         "acct",
		LagBound:     2 * time.Second,
		ShipInterval: 500 * time.Millisecond,
		Delay:        constDelay(100 * time.Millisecond),
	})
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	st.Start()
	env.Go("writer", func(p *sim.Proc) {
		st.Append(p.Now(), "blob", "logs", "PutBlock", 4096, "", "", func() error { applied++; return nil })
		p.Sleep(510 * time.Millisecond) // first record is now in flight on the WAN
		st.Append(p.Now(), "blob", "logs", "PutBlock", 4096, "", "", func() error { applied++; return nil })
	})
	var lost []*Record
	env.GoAt(550*time.Millisecond, "outage", func(p *sim.Proc) {
		lost = st.Freeze(p.Now())
		// Writes arriving after the freeze are dropped, not queued.
		st.Append(p.Now(), "blob", "logs", "PutBlock", 4096, "", "", func() error { applied++; return nil })
	})
	env.Run()

	if applied != 0 {
		t.Errorf("%d records applied despite the freeze", applied)
	}
	if len(lost) != 2 {
		t.Fatalf("Freeze returned %d lost records, want 2 (1 in flight + 1 pending)", len(lost))
	}
	s := st.Stats()
	if s.LostAtFreeze != 2 || s.DroppedFrozen != 1 {
		t.Errorf("stats = %+v, want LostAtFreeze 2, DroppedFrozen 1", s)
	}
	if !st.Frozen() {
		t.Error("stream not frozen")
	}
	// Idempotent: a second freeze loses nothing more.
	if again := st.Freeze(600 * time.Millisecond); len(again) != 0 {
		t.Errorf("second Freeze returned %d records", len(again))
	}
}

func TestStreamApplyErrorsTolerated(t *testing.T) {
	env := sim.NewEnv(1)
	st, err := NewStream(env, Config{Name: "acct", LagBound: time.Second, Delay: constDelay(time.Millisecond)})
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	st.Start()
	env.Go("writer", func(p *sim.Proc) {
		st.Append(p.Now(), "queue", "jobs", "DeleteMessage", 64, "", "", func() error { return errors.New("message gone") })
		st.Append(p.Now(), "queue", "jobs", "PutMessage", 64, "", "", func() error { return nil })
	})
	env.Run()
	s := st.Stats()
	if s.Applied != 2 || s.ApplyErrors != 1 {
		t.Errorf("stats = %+v, want Applied 2, ApplyErrors 1", s)
	}
}

func TestWaitDrained(t *testing.T) {
	env := sim.NewEnv(1)
	st, err := NewStream(env, Config{
		Name:         "acct",
		LagBound:     time.Second,
		ShipInterval: 100 * time.Millisecond,
		Delay:        constDelay(200 * time.Millisecond),
	})
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	st.Start()
	env.Go("writer", func(p *sim.Proc) {
		st.Append(p.Now(), "table", "t", "InsertEntity", 128, "", "", func() error { return nil })
	})
	var drainedAt time.Duration
	env.Go("waiter", func(p *sim.Proc) {
		st.WaitDrained(p)
		drainedAt = p.Now()
	})
	env.Run()
	if want := 300 * time.Millisecond; drainedAt != want {
		t.Errorf("WaitDrained returned at %v, want %v (ship window + WAN hop)", drainedAt, want)
	}
	if st.Pending() != 0 {
		t.Errorf("%d records still pending after drain", st.Pending())
	}
}

// TestSecondaryReadsMonotonicLastSync is the RA-GRS staleness contract:
// every client observing LastSyncTime on the secondary sees a
// non-decreasing sequence (stale but monotonic), and the value never runs
// ahead of what the primary has actually committed.
func TestSecondaryReadsMonotonicLastSync(t *testing.T) {
	cases := []struct {
		name     string
		commits  []time.Duration // primary commit schedule
		shipEach time.Duration   // batching window
		wanHop   time.Duration
		readers  int
		sampleEv time.Duration
	}{
		{
			name:     "steady-writer-two-readers",
			commits:  []time.Duration{0, 100 * time.Millisecond, 200 * time.Millisecond, 700 * time.Millisecond, 1500 * time.Millisecond},
			shipEach: 250 * time.Millisecond,
			wanHop:   70 * time.Millisecond,
			readers:  2,
			sampleEv: 90 * time.Millisecond,
		},
		{
			name:     "bursty-writer-slow-wan",
			commits:  []time.Duration{0, 10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond, 2 * time.Second},
			shipEach: 500 * time.Millisecond,
			wanHop:   400 * time.Millisecond,
			readers:  3,
			sampleEv: 130 * time.Millisecond,
		},
		{
			name:     "single-write-long-tail",
			commits:  []time.Duration{300 * time.Millisecond},
			shipEach: 100 * time.Millisecond,
			wanHop:   35 * time.Millisecond,
			readers:  1,
			sampleEv: 50 * time.Millisecond,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			env := sim.NewEnv(42)
			st, err := NewStream(env, Config{
				Name:         "acct",
				LagBound:     5 * time.Second,
				ShipInterval: tc.shipEach,
				Delay:        constDelay(tc.wanHop),
			})
			if err != nil {
				t.Fatalf("NewStream: %v", err)
			}
			st.Start()
			env.Go("writer", func(p *sim.Proc) {
				last := time.Duration(0)
				for _, at := range tc.commits {
					p.Sleep(at - last)
					last = at
					st.Append(p.Now(), "table", "t", "InsertEntity", 512, "", "", func() error { return nil })
				}
			})
			// committedBy returns the newest primary commit at or before now.
			committedBy := func(now time.Duration) time.Duration {
				var newest time.Duration
				for _, at := range tc.commits {
					if at <= now && at > newest {
						newest = at
					}
				}
				return newest
			}
			horizon := tc.commits[len(tc.commits)-1] + tc.shipEach + tc.wanHop + time.Second
			samples := make([][]time.Duration, tc.readers)
			for i := 0; i < tc.readers; i++ {
				i := i
				env.Go(fmt.Sprintf("reader-%d", i), func(p *sim.Proc) {
					for p.Now() < horizon {
						now := p.Now()
						v := st.LastSyncTime()
						if v > committedBy(now) {
							t.Errorf("reader %d at %v: LastSyncTime %v exceeds primary committed time %v",
								i, now, v, committedBy(now))
						}
						samples[i] = append(samples[i], v)
						p.Sleep(tc.sampleEv)
					}
				})
			}
			env.Run()
			for i, seq := range samples {
				for j := 1; j < len(seq); j++ {
					if seq[j] < seq[j-1] {
						t.Errorf("reader %d: LastSyncTime went backwards (%v after %v)", i, seq[j], seq[j-1])
					}
				}
				// Every reader eventually converges on the final commit.
				if len(seq) > 0 && seq[len(seq)-1] != tc.commits[len(tc.commits)-1] {
					t.Errorf("reader %d ended at LastSyncTime %v, want %v", i, seq[len(seq)-1], tc.commits[len(tc.commits)-1])
				}
			}
		})
	}
}

func TestAccountStateMachine(t *testing.T) {
	a := NewAccount("acct")
	if a.State() != StateHealthy || a.ActiveIsSecondary() {
		t.Fatal("new account must start healthy with the primary active")
	}
	// Illegal jumps are rejected.
	if err := a.To(0, StateFailoverPromoted, "skip"); err == nil {
		t.Error("healthy -> failover-promoted allowed")
	}
	if err := a.To(0, StateFailback, "skip"); err == nil {
		t.Error("healthy -> failback allowed")
	}
	// Short outage recovers without promotion.
	mustTo(t, a, 10*time.Second, StatePrimaryOutage, "blip")
	mustTo(t, a, 11*time.Second, StateHealthy, "recovered")
	if a.ActiveIsSecondary() {
		t.Error("recovery without promotion flipped the active region")
	}
	// Full failover cycle.
	mustTo(t, a, 20*time.Second, StatePrimaryOutage, "region outage")
	mustTo(t, a, 22*time.Second, StateFailoverPromoted, "detection elapsed")
	if !a.ActiveIsSecondary() {
		t.Error("promotion did not make the secondary active")
	}
	mustTo(t, a, 30*time.Second, StateFailback, "primary back")
	mustTo(t, a, 35*time.Second, StateHealthy, "reverse stream drained")
	if !a.ActiveIsSecondary() {
		t.Error("failback must keep the promoted region active (roles swap permanently)")
	}
	if at, ok := a.PromotedAt(); !ok || at != 22*time.Second {
		t.Errorf("PromotedAt = %v, %v; want 22s, true", at, ok)
	}
	if got := len(a.Transitions()); got != 6 {
		t.Errorf("%d transitions recorded, want 6", got)
	}

	a.RecordLoss("queue", 3)
	a.RecordLoss("table", 2)
	if a.TotalLost() != 5 || a.Lost("queue") != 3 || a.Lost("blob") != 0 {
		t.Errorf("loss tally wrong: total %d, queue %d, blob %d", a.TotalLost(), a.Lost("queue"), a.Lost("blob"))
	}
}

func mustTo(t *testing.T, a *Account, at time.Duration, s State, reason string) {
	t.Helper()
	if err := a.To(at, s, reason); err != nil {
		t.Fatalf("To(%v): %v", s, err)
	}
}
