// Package georepl implements the geo-replication machinery of a
// geo-redundant storage account: a per-account sequenced replication log
// shipped asynchronously over a WAN link to a secondary region, bounded-lag
// accounting with a measurable LastSyncTime (the value RA-GRS clients query
// to judge secondary staleness), and the failover state machine an account
// walks through when its primary region suffers an outage
// (healthy -> primary-outage -> failover-promoted -> failback).
//
// The package is deliberately independent of internal/cloud: a Stream only
// knows how to sequence, batch, ship, and apply opaque records; the cloud
// layer supplies the apply closures (replaying committed mutations against
// the secondary's engines) and the WAN delay function (from
// netmodel.WANLink). Everything runs inside the cooperative DES — the
// shipper is a simulation process that parks on a fresh one-shot signal
// whenever the log is empty, so an idle stream holds no pending events and
// never keeps Env.Run alive.
package georepl

import (
	"fmt"
	"time"

	"azurebench/internal/sim"
)

// recOverhead is the per-record framing cost charged against the WAN link
// in addition to the payload bytes (sequence numbers, partition key,
// operation header).
const recOverhead = 256

// Record is one committed primary mutation awaiting replay on the
// secondary.
type Record struct {
	// Seq is the account-wide shipping order.
	Seq uint64
	// PartSeq sequences records within one partition; the secondary
	// applies each partition's records in PartSeq order (which batch
	// replay preserves because batches keep log order).
	PartSeq uint64
	// At is the primary's virtual commit time; LastSyncTime advances to
	// it once the record is applied, and lag is measured against it.
	At      time.Duration
	Service string // "blob" | "queue" | "table"
	Part    string // partition key (container, queue, or table name)
	Op      string
	Bytes   int64
	// TraceID/SpanID carry the causal identity of the primary mutation
	// that produced this record (empty when the primary ran untraced), so
	// replay trace ops parent under the op that caused them.
	TraceID string
	SpanID  string
	// Apply replays the mutation against the secondary's engine.
	Apply func() error
}

// Config parameterizes a Stream.
type Config struct {
	// Name labels the WAN station ("wan:<Name>") and the shipper process.
	Name string
	// LagBound is the replication lag the stream aims to stay under; the
	// shipper's batching window derives from it and Stats.BoundExceeded
	// counts applied records whose actual lag overran it.
	LagBound time.Duration
	// ShipInterval is the batching window: the shipper waits this long
	// after waking before taking the pending batch, so bursts coalesce
	// into one WAN transfer. Defaults to LagBound/4.
	ShipInterval time.Duration
	// Delay maps a batch's wire size to its one-way WAN transit time
	// (typically netmodel.WANLink.ForwardDelay). Required.
	Delay func(bytes int64) time.Duration
}

// Stats counts stream activity.
type Stats struct {
	Appended      uint64 // records accepted into the log
	Applied       uint64 // records replayed on the secondary
	Batches       uint64 // WAN transfers completed
	BytesShipped  int64  // wire bytes (payload + framing) across the WAN
	ApplyErrors   uint64 // replays the secondary engine rejected
	BoundExceeded uint64 // applied records whose lag overran LagBound
	LostAtFreeze  uint64 // records discarded by Freeze (the RPO)
	DroppedFrozen uint64 // appends arriving after Freeze
	MaxLag        time.Duration
	SumLag        time.Duration
}

// MeanLag returns the average replication lag over applied records.
func (s Stats) MeanLag() time.Duration {
	if s.Applied == 0 {
		return 0
	}
	return s.SumLag / time.Duration(s.Applied)
}

// Stream is one direction of geo-replication for one account: an ordered
// log of committed mutations, a shipper process draining it over the WAN,
// and the lag/LastSyncTime bookkeeping RA-GRS reads consult. Not safe for
// concurrent use; the simulation serialises all calls.
type Stream struct {
	env *sim.Env
	cfg Config
	wan *sim.Resource

	pending  []*Record
	inflight []*Record
	nextSeq  uint64
	partSeq  map[string]uint64
	lastSync time.Duration
	frozen   bool

	wake  *sim.Signal // armed fresh each idle park; Append/Freeze fire it
	drain *sim.Signal // armed by WaitDrained; fired when the log empties

	stats  Stats
	onShip func(start, end time.Duration, recs []*Record, bytes int64)
}

// NewStream creates a stream and its WAN station. The shipper process is
// not started until Start, so a stream that is never started contributes
// nothing to the event timeline.
func NewStream(env *sim.Env, cfg Config) (*Stream, error) {
	if cfg.Delay == nil {
		return nil, fmt.Errorf("georepl: stream %q needs a WAN delay function", cfg.Name)
	}
	if cfg.LagBound <= 0 {
		cfg.LagBound = 5 * time.Second
	}
	if cfg.ShipInterval <= 0 {
		cfg.ShipInterval = cfg.LagBound / 4
	}
	return &Stream{
		env:     env,
		cfg:     cfg,
		wan:     sim.NewResource(env, "wan:"+cfg.Name, 1),
		partSeq: map[string]uint64{},
	}, nil
}

// Start launches the shipper process.
func (s *Stream) Start() {
	s.env.Go("georepl:"+s.cfg.Name, s.run)
}

// WAN exposes the stream's WAN station for telemetry sampling.
func (s *Stream) WAN() *sim.Resource { return s.wan }

// Stats returns a snapshot of stream counters. Safe on nil.
func (s *Stream) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return s.stats
}

// Pending returns the records not yet handed to the WAN.
func (s *Stream) Pending() int { return len(s.pending) }

// Frozen reports whether Freeze has been called.
func (s *Stream) Frozen() bool { return s.frozen }

// LastSyncTime returns the primary commit time of the latest record the
// secondary has applied — the RA-GRS staleness marker. It never exceeds
// the primary's committed virtual time and only moves forward, so reads
// observing it are monotonic. Safe on nil (returns zero).
func (s *Stream) LastSyncTime() time.Duration {
	if s == nil {
		return 0
	}
	return s.lastSync
}

// SetOnShip installs a hook invoked after each batch applies, with the
// transfer's start/end virtual times, the records, and the wire bytes —
// the cloud layer uses it to emit WAN trace spans.
func (s *Stream) SetOnShip(fn func(start, end time.Duration, recs []*Record, bytes int64)) {
	s.onShip = fn
}

// Append accepts a committed primary mutation into the replication log.
// at is the commit virtual time; apply replays the mutation on the
// secondary when the batch lands. traceID/spanID name the originating
// mutation's trace identity (empty when untraced). Appends after Freeze
// are dropped (the primary is partitioned from the WAN).
func (s *Stream) Append(at time.Duration, service, part, op string, bytes int64, traceID, spanID string, apply func() error) {
	if s.frozen {
		s.stats.DroppedFrozen++
		return
	}
	s.nextSeq++
	s.partSeq[part]++
	s.pending = append(s.pending, &Record{
		Seq:     s.nextSeq,
		PartSeq: s.partSeq[part],
		At:      at,
		Service: service,
		Part:    part,
		Op:      op,
		Bytes:   bytes,
		TraceID: traceID,
		SpanID:  spanID,
		Apply:   apply,
	})
	s.stats.Appended++
	if s.wake != nil {
		s.wake.Fire()
		s.wake = nil
	}
}

// Freeze severs the stream at a region outage: every record still pending
// or in flight on the WAN is lost, and the shipper process exits. The
// returned records are the data loss the failover experiment reports as
// RPO. Idempotent; later Appends are dropped.
func (s *Stream) Freeze(now time.Duration) (lost []*Record) {
	if s.frozen {
		return nil
	}
	s.frozen = true
	lost = append(lost, s.inflight...)
	lost = append(lost, s.pending...)
	s.inflight, s.pending = nil, nil
	s.stats.LostAtFreeze += uint64(len(lost))
	if s.wake != nil {
		s.wake.Fire()
		s.wake = nil
	}
	if s.drain != nil {
		s.drain.Fire()
		s.drain = nil
	}
	return lost
}

// WaitDrained parks p until the log is fully shipped and applied (or the
// stream freezes, after which nothing more will drain) — the failback
// path uses it to know when the old primary has caught up.
func (s *Stream) WaitDrained(p *sim.Proc) {
	for !s.frozen && (len(s.pending) > 0 || len(s.inflight) > 0) {
		if s.drain == nil {
			s.drain = sim.NewSignal(s.env)
		}
		s.drain.Wait(p)
	}
}

// run is the shipper process: park while idle, batch for the shipping
// interval, transit the WAN, replay on the secondary, repeat.
func (s *Stream) run(p *sim.Proc) {
	for {
		if s.frozen {
			return
		}
		if len(s.pending) == 0 {
			// Idle: park on a fresh one-shot signal (sim.Signal latches
			// once fired, so each round needs its own). A parked-forever
			// wait does not keep Env.Run alive.
			s.wake = sim.NewSignal(s.env)
			s.wake.Wait(p)
			continue
		}
		p.Sleep(s.cfg.ShipInterval) // batching window: coalesce a burst
		if s.frozen {
			return
		}
		batch := s.pending
		s.pending = nil
		s.inflight = batch
		var bytes int64
		for _, r := range batch {
			bytes += r.Bytes + recOverhead
		}
		start := p.Now()
		s.wan.Use(p, s.cfg.Delay(bytes))
		if s.frozen {
			// The outage hit while the batch was in transit; Freeze
			// already counted it as lost.
			return
		}
		now := p.Now()
		for _, r := range batch {
			if err := r.Apply(); err != nil {
				s.stats.ApplyErrors++
			}
			s.stats.Applied++
			lag := now - r.At
			s.stats.SumLag += lag
			if lag > s.stats.MaxLag {
				s.stats.MaxLag = lag
			}
			if lag > s.cfg.LagBound {
				s.stats.BoundExceeded++
			}
			s.lastSync = r.At
		}
		s.inflight = nil
		s.stats.Batches++
		s.stats.BytesShipped += bytes
		if s.onShip != nil {
			s.onShip(start, now, batch, bytes)
		}
		if len(s.pending) == 0 && s.drain != nil {
			s.drain.Fire()
			s.drain = nil
		}
	}
}

// State enumerates the failover phases of a geo-replicated account.
type State int

// Failover states.
const (
	// StateHealthy: primary serves, secondary trails within the lag bound.
	StateHealthy State = iota
	// StatePrimaryOutage: the primary region is dark; requests there fail
	// while the detection window runs.
	StatePrimaryOutage
	// StateFailoverPromoted: the secondary has been promoted — it owns a
	// new partition-map version and serves reads and writes.
	StateFailoverPromoted
	// StateFailback: the old primary is back; the reverse stream replays
	// the promoted region's writes into it.
	StateFailback
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StatePrimaryOutage:
		return "primary-outage"
	case StateFailoverPromoted:
		return "failover-promoted"
	case StateFailback:
		return "failback"
	}
	return "?"
}

// next reports the legal successor states.
func (s State) next(to State) bool {
	switch s {
	case StateHealthy:
		return to == StatePrimaryOutage
	case StatePrimaryOutage:
		return to == StateFailoverPromoted || to == StateHealthy
	case StateFailoverPromoted:
		return to == StateFailback
	case StateFailback:
		return to == StateHealthy
	}
	return false
}

// Transition records one state change.
type Transition struct {
	At     time.Duration
	From   State
	To     State
	Reason string
}

// Account is the failover state machine of one geo-replicated account.
// It tracks which region is active and the loss tally the RPO report
// renders.
type Account struct {
	name        string
	state       State
	transitions []Transition
	secondary   bool // true once the secondary has been promoted
	lost        map[string]uint64
}

// NewAccount creates a healthy account.
func NewAccount(name string) *Account {
	return &Account{name: name, lost: map[string]uint64{}}
}

// Name returns the account name.
func (a *Account) Name() string { return a.name }

// State returns the current failover state.
func (a *Account) State() State { return a.state }

// ActiveIsSecondary reports whether the promoted secondary is the active
// region (roles stay swapped after failback — promotion is permanent, as
// in the real service).
func (a *Account) ActiveIsSecondary() bool { return a.secondary }

// Transitions returns the state-change history in order.
func (a *Account) Transitions() []Transition {
	out := make([]Transition, len(a.transitions))
	copy(out, a.transitions)
	return out
}

// To moves the account to the next state, enforcing the legal cycle
// healthy -> primary-outage -> failover-promoted -> failback -> healthy
// (an outage shorter than the detection window may also return straight
// to healthy).
func (a *Account) To(now time.Duration, to State, reason string) error {
	if !a.state.next(to) {
		return fmt.Errorf("georepl: account %q cannot move %v -> %v", a.name, a.state, to)
	}
	a.transitions = append(a.transitions, Transition{At: now, From: a.state, To: to, Reason: reason})
	if to == StateFailoverPromoted {
		a.secondary = true
	}
	a.state = to
	return nil
}

// RecordLoss adds n records lost on freeze for the given service.
func (a *Account) RecordLoss(service string, n int) {
	a.lost[service] += uint64(n)
}

// Lost returns the records lost at failover for one service.
func (a *Account) Lost(service string) uint64 { return a.lost[service] }

// TotalLost returns the account-wide RPO in records, summed in fixed
// service order for determinism.
func (a *Account) TotalLost() uint64 {
	var total uint64
	for _, svc := range []string{"blob", "queue", "table"} {
		total += a.lost[svc]
	}
	return total
}

// PromotedAt returns the virtual time of the promotion transition and
// whether one happened — the basis of the RTO measurement.
func (a *Account) PromotedAt() (time.Duration, bool) {
	for _, tr := range a.transitions {
		if tr.To == StateFailoverPromoted {
			return tr.At, true
		}
	}
	return 0, false
}
