package queuestore

import (
	"testing"
	"time"

	"azurebench/internal/payload"
	"azurebench/internal/vclock"
)

func BenchmarkPutGetDeleteCycle(b *testing.B) {
	s := New(vclock.Real{})
	if err := s.CreateQueue("bench"); err != nil {
		b.Fatal(err)
	}
	body := payload.Synthetic(1, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Put("bench", body, 0); err != nil {
			b.Fatal(err)
		}
		msg, ok, err := s.GetOne("bench", time.Minute)
		if err != nil || !ok {
			b.Fatal("get failed")
		}
		if err := s.Delete("bench", msg.ID, msg.PopReceipt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPeekWithDeepQueue(b *testing.B) {
	s := New(vclock.Real{})
	if err := s.CreateQueue("bench"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		if _, err := s.Put("bench", payload.Zero(64), 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := s.PeekOne("bench"); err != nil || !ok {
			b.Fatal("peek failed")
		}
	}
}

func BenchmarkApproximateCount(b *testing.B) {
	s := New(vclock.Real{})
	if err := s.CreateQueue("bench"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := s.Put("bench", payload.Zero(64), 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ApproximateCount("bench"); err != nil {
			b.Fatal(err)
		}
	}
}
