package queuestore

import (
	"sort"

	"azurebench/internal/payload"
	snap "azurebench/internal/snapshot"
)

// SnapshotSection implements snap.Snapshotter.
func (s *Store) SnapshotSection() string { return "engine/queue" }

// Save appends the full account state: the non-FIFO selection PRNG, the
// pop-receipt sequence, and every queue's messages in queue order
// (message order is semantically significant — it is the FIFO order).
func (s *Store) Save(w *snap.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.U64(s.rng.State())
	w.U64(s.popSeq)
	names := make([]string, 0, len(s.queues))
	for k := range s.queues {
		names = append(names, k)
	}
	sort.Strings(names)
	w.Int(len(names))
	for _, name := range names {
		q := s.queues[name]
		w.String(q.name)
		w.Time(q.created)
		saveMeta(w, q.metadata)
		w.U64(q.nextID)
		w.Int(len(q.msgs))
		for _, m := range q.msgs {
			w.String(m.id)
			m.body.Save(w)
			w.Time(m.inserted)
			w.Time(m.expires)
			w.Time(m.nextVisible)
			w.Int(m.dequeueCount)
			w.String(m.popReceipt)
		}
	}
}

// Load restores an account saved by Save, replacing all live state.
func (s *Store) Load(r *snap.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rng.SetState(r.U64())
	s.popSeq = r.U64()
	nq := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	queues := make(map[string]*queue, nq)
	for i := 0; i < nq; i++ {
		q := &queue{
			name:    r.String(),
			created: r.Time(),
		}
		var err error
		if q.metadata, err = loadMeta(r); err != nil {
			return err
		}
		q.nextID = r.U64()
		nm := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		for j := 0; j < nm; j++ {
			m := &message{id: r.String()}
			if m.body, err = payload.Load(r); err != nil {
				return err
			}
			m.inserted = r.Time()
			m.expires = r.Time()
			m.nextVisible = r.Time()
			m.dequeueCount = r.Int()
			m.popReceipt = r.String()
			q.msgs = append(q.msgs, m)
		}
		queues[q.name] = q
	}
	if err := r.Err(); err != nil {
		return err
	}
	s.queues = queues
	return nil
}

func saveMeta(w *snap.Writer, m map[string]string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.String(k)
		w.String(m[k])
	}
}

func loadMeta(r *snap.Reader) (map[string]string, error) {
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	m := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := r.String()
		m[k] = r.String()
	}
	return m, r.Err()
}
