package queuestore

import (
	"fmt"
	"testing"
	"time"

	"azurebench/internal/payload"
	"azurebench/internal/storecommon"
	"azurebench/internal/vclock"
)

func newTestStore() (*Store, *vclock.Manual) {
	clk := &vclock.Manual{}
	s := New(clk)
	if err := s.CreateQueue("tasks"); err != nil {
		panic(err)
	}
	return s, clk
}

func TestCreateDeleteQueue(t *testing.T) {
	s := New(&vclock.Manual{})
	if err := s.CreateQueue("my-queue"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateQueue("my-queue"); !storecommon.IsConflict(err) {
		t.Fatalf("duplicate = %v", err)
	}
	if err := s.CreateQueue("Bad Name"); err == nil {
		t.Fatal("invalid name accepted")
	}
	if !s.QueueExists("my-queue") {
		t.Fatal("queue missing")
	}
	if err := s.DeleteQueue("my-queue"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteQueue("my-queue"); !storecommon.IsNotFound(err) {
		t.Fatalf("double delete = %v", err)
	}
}

func TestCreateQueueIfNotExists(t *testing.T) {
	s := New(&vclock.Manual{})
	created, err := s.CreateQueueIfNotExists("abc")
	if err != nil || !created {
		t.Fatalf("first = %v,%v", created, err)
	}
	created, err = s.CreateQueueIfNotExists("abc")
	if err != nil || created {
		t.Fatalf("second = %v,%v", created, err)
	}
}

func TestListQueues(t *testing.T) {
	s := New(&vclock.Manual{})
	for _, n := range []string{"aq-2", "aq-1", "other"} {
		if err := s.CreateQueue(n); err != nil {
			t.Fatal(err)
		}
	}
	got := s.ListQueues("aq-")
	if len(got) != 2 || got[0] != "aq-1" || got[1] != "aq-2" {
		t.Fatalf("ListQueues = %v", got)
	}
}

func TestPutGetDeleteRoundTrip(t *testing.T) {
	s, _ := newTestStore()
	body := payload.String("work item 1")
	if _, err := s.Put("tasks", body, 0); err != nil {
		t.Fatal(err)
	}
	m, ok, err := s.GetOne("tasks", 0)
	if err != nil || !ok {
		t.Fatalf("GetOne = %v, %v", ok, err)
	}
	if !payload.Equal(m.Body, body) {
		t.Fatal("body mismatch")
	}
	if m.DequeueCount != 1 {
		t.Fatalf("DequeueCount = %d", m.DequeueCount)
	}
	if err := s.Delete("tasks", m.ID, m.PopReceipt); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.ApproximateCount("tasks"); n != 0 {
		t.Fatalf("count after delete = %d", n)
	}
}

func TestGetHidesMessage(t *testing.T) {
	s, clk := newTestStore()
	if _, err := s.Put("tasks", payload.String("x"), 0); err != nil {
		t.Fatal(err)
	}
	m1, ok, _ := s.GetOne("tasks", 10*time.Second)
	if !ok {
		t.Fatal("first get empty")
	}
	// A second consumer sees nothing while the message is invisible.
	if _, ok, _ := s.GetOne("tasks", 10*time.Second); ok {
		t.Fatal("message visible to second consumer during visibility timeout")
	}
	if _, ok, _ := s.PeekOne("tasks"); ok {
		t.Fatal("peek sees invisible message")
	}
	// But the count still includes it (barrier semantics).
	if n, _ := s.ApproximateCount("tasks"); n != 1 {
		t.Fatalf("count = %d, want 1", n)
	}
	// After the timeout it reappears with a higher dequeue count.
	clk.Advance(11 * time.Second)
	m2, ok, _ := s.GetOne("tasks", 10*time.Second)
	if !ok {
		t.Fatal("message did not reappear")
	}
	if m2.ID != m1.ID || m2.DequeueCount != 2 {
		t.Fatalf("reappeared message = %+v", m2)
	}
	// The old pop receipt is now stale.
	if err := s.Delete("tasks", m1.ID, m1.PopReceipt); !storecommon.IsPreconditionFailed(err) {
		t.Fatalf("stale receipt delete = %v", err)
	}
	if err := s.Delete("tasks", m2.ID, m2.PopReceipt); err != nil {
		t.Fatal(err)
	}
}

func TestPeekDoesNotAlterState(t *testing.T) {
	s, _ := newTestStore()
	if _, err := s.Put("tasks", payload.String("x"), 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		m, ok, err := s.PeekOne("tasks")
		if err != nil || !ok {
			t.Fatalf("peek %d failed: %v", i, err)
		}
		if m.DequeueCount != 0 || m.PopReceipt != "" {
			t.Fatalf("peeked message mutated: %+v", m)
		}
	}
	// Message is still gettable by everyone.
	if _, ok, _ := s.GetOne("tasks", 0); !ok {
		t.Fatal("get after peeks failed")
	}
}

func TestFIFOOrderWithWindowOne(t *testing.T) {
	s, _ := newTestStore()
	for i := 0; i < 10; i++ {
		if _, err := s.Put("tasks", payload.String(fmt.Sprintf("m%d", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m, ok, _ := s.GetOne("tasks", time.Minute)
		if !ok {
			t.Fatalf("queue dry at %d", i)
		}
		if got := string(m.Body.Materialize()); got != fmt.Sprintf("m%d", i) {
			t.Fatalf("got %q at position %d", got, i)
		}
	}
}

func TestNonFIFOWindowReorders(t *testing.T) {
	clk := &vclock.Manual{}
	s := NewWithConfig(clk, Config{NonFIFOWindow: 8, Seed: 3})
	if err := s.CreateQueue("q-1"); err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		if _, err := s.Put("q-1", payload.String(fmt.Sprintf("m%d", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	inOrder := true
	for i := 0; i < n; i++ {
		m, ok, _ := s.GetOne("q-1", time.Hour)
		if !ok {
			t.Fatalf("queue dry at %d", i)
		}
		if string(m.Body.Materialize()) != fmt.Sprintf("m%d", i) {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("64 messages delivered in exact FIFO order despite window 8 (selection not applied?)")
	}
}

func TestBatchGet(t *testing.T) {
	s, _ := newTestStore()
	for i := 0; i < 5; i++ {
		if _, err := s.Put("tasks", payload.String("x"), 0); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := s.Get("tasks", 3, time.Minute)
	if err != nil || len(msgs) != 3 {
		t.Fatalf("batch get = %d msgs, %v", len(msgs), err)
	}
	msgs, err = s.Get("tasks", 10, time.Minute)
	if err != nil || len(msgs) != 2 {
		t.Fatalf("second batch = %d msgs, %v", len(msgs), err)
	}
}

func TestMessageTTLExpiry(t *testing.T) {
	s, clk := newTestStore()
	if _, err := s.Put("tasks", payload.String("short"), time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("tasks", payload.String("long"), time.Hour); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Minute)
	if n, _ := s.ApproximateCount("tasks"); n != 1 {
		t.Fatalf("count = %d, want 1 after expiry", n)
	}
	m, ok, _ := s.GetOne("tasks", 0)
	if !ok || string(m.Body.Materialize()) != "long" {
		t.Fatalf("survivor = %+v ok=%v", m, ok)
	}
}

func TestDefaultTTLIsOneWeek(t *testing.T) {
	s, clk := newTestStore()
	m, err := s.Put("tasks", payload.String("x"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Expires.Sub(m.Inserted); got != storecommon.MaxMessageTTL {
		t.Fatalf("default ttl = %v", got)
	}
	clk.Advance(storecommon.MaxMessageTTL + time.Second)
	if n, _ := s.ApproximateCount("tasks"); n != 0 {
		t.Fatalf("message survived a week: count=%d", n)
	}
}

func TestMessageSizeLimit(t *testing.T) {
	s, _ := newTestStore()
	if _, err := s.Put("tasks", payload.Zero(storecommon.MaxMessagePayload), 0); err != nil {
		t.Fatalf("48KB message rejected: %v", err)
	}
	_, err := s.Put("tasks", payload.Zero(storecommon.MaxMessagePayload+1), 0)
	if storecommon.CodeOf(err) != storecommon.CodeMessageTooLarge {
		t.Fatalf("oversized = %v", err)
	}
}

func TestUpdateMessage(t *testing.T) {
	s, _ := newTestStore()
	if _, err := s.Put("tasks", payload.String("v1"), 0); err != nil {
		t.Fatal(err)
	}
	m, _, _ := s.GetOne("tasks", time.Minute)
	m2, err := s.Update("tasks", m.ID, m.PopReceipt, payload.String("v2"), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if m2.PopReceipt == m.PopReceipt {
		t.Fatal("update did not rotate pop receipt")
	}
	// Old receipt is stale now.
	if err := s.Delete("tasks", m.ID, m.PopReceipt); !storecommon.IsPreconditionFailed(err) {
		t.Fatalf("stale receipt = %v", err)
	}
	if err := s.Delete("tasks", m2.ID, m2.PopReceipt); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteValidation(t *testing.T) {
	s, _ := newTestStore()
	if err := s.Delete("absent", "id", "pr"); !storecommon.IsNotFound(err) {
		t.Fatalf("missing queue = %v", err)
	}
	if err := s.Delete("tasks", "nope", "pr"); !storecommon.IsNotFound(err) {
		t.Fatalf("missing message = %v", err)
	}
	if _, err := s.Put("tasks", payload.String("x"), 0); err != nil {
		t.Fatal(err)
	}
	m, _, _ := s.GetOne("tasks", time.Minute)
	if err := s.Delete("tasks", m.ID, "wrong"); !storecommon.IsPreconditionFailed(err) {
		t.Fatalf("wrong receipt = %v", err)
	}
}

func TestClearMessages(t *testing.T) {
	s, _ := newTestStore()
	for i := 0; i < 3; i++ {
		if _, err := s.Put("tasks", payload.String("x"), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.ClearMessages("tasks"); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.ApproximateCount("tasks"); n != 0 {
		t.Fatalf("count = %d after clear", n)
	}
}

func TestVisibilityValidation(t *testing.T) {
	s, _ := newTestStore()
	if _, err := s.Get("tasks", 1, -time.Second); storecommon.CodeOf(err) != storecommon.CodeInvalidVisibility {
		t.Fatalf("negative visibility = %v", err)
	}
	if _, err := s.Get("tasks", 1, storecommon.MaxVisibilityTimeout+time.Hour); storecommon.CodeOf(err) != storecommon.CodeInvalidVisibility {
		t.Fatalf("huge visibility = %v", err)
	}
}

// TestNoDoubleVisibility is the core safety invariant: between a Get and
// the expiry of its visibility timeout, no other Get may observe the same
// message.
func TestNoDoubleVisibility(t *testing.T) {
	s, clk := newTestStore()
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := s.Put("tasks", payload.String(fmt.Sprintf("m%d", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	held := map[string]time.Time{} // message id -> visibility expiry
	got := 0
	for got < n {
		now := clk.Now()
		for id, exp := range held {
			if !exp.After(now) {
				delete(held, id)
			}
		}
		m, ok, err := s.GetOne("tasks", 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			if exp, dup := held[m.ID]; dup {
				t.Fatalf("message %s visible twice (held until %v, now %v)", m.ID, exp, now)
			}
			held[m.ID] = m.NextVisible
			if err := s.Delete("tasks", m.ID, m.PopReceipt); err != nil {
				t.Fatal(err)
			}
			delete(held, m.ID)
			got++
		}
		clk.Advance(137 * time.Millisecond)
	}
}

func TestBarrierCountingPattern(t *testing.T) {
	// Algorithm 2: workers put one message per phase and poll the count.
	s, _ := newTestStore()
	const workers = 8
	for phase := 1; phase <= 3; phase++ {
		for w := 0; w < workers; w++ {
			if _, err := s.Put("tasks", payload.String("arrived"), 0); err != nil {
				t.Fatal(err)
			}
		}
		n, err := s.ApproximateCount("tasks")
		if err != nil {
			t.Fatal(err)
		}
		if n != workers*phase {
			t.Fatalf("phase %d count = %d, want %d", phase, n, workers*phase)
		}
	}
}
