// Package queuestore implements the Windows Azure Queue storage engine:
// named queues of messages with insertion TTL, per-dequeue visibility
// timeouts, pop receipts, Peek vs Get semantics, and (optionally) the
// service's documented lack of a FIFO guarantee.
//
// The semantics the paper's benchmark leans on are all here: GetMessage
// hides the message from other consumers for the visibility timeout and
// must be followed by DeleteMessage; PeekMessage observes without hiding;
// an undeleted message reappears; messages expire after their TTL (one
// week in the October 2011 API, which obsoleted the two-hour limit the
// paper calls out); and the approximate message count drives the queue
// based barrier of Algorithm 2.
package queuestore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"azurebench/internal/payload"
	"azurebench/internal/sim"
	"azurebench/internal/storecommon"
	"azurebench/internal/vclock"
)

// Config tunes engine behaviour.
type Config struct {
	// NonFIFOWindow is the number of leading visible messages Get chooses
	// from. 1 (the default via NewStore) yields strict FIFO; larger values
	// emulate Azure's lack of ordering guarantee.
	NonFIFOWindow int
	// Seed feeds the deterministic PRNG used for non-FIFO selection.
	Seed int64
}

// Store is an in-memory queue storage account. All methods are safe for
// concurrent use.
type Store struct {
	mu     sync.Mutex
	clock  vclock.Clock
	cfg    Config
	rng    *sim.Rand
	queues map[string]*queue
	popSeq uint64
}

type queue struct {
	name     string
	created  time.Time
	metadata map[string]string
	msgs     []*message
	nextID   uint64
}

type message struct {
	id           string
	body         payload.Payload
	inserted     time.Time
	expires      time.Time
	nextVisible  time.Time
	dequeueCount int
	popReceipt   string // valid while the message is invisible from a Get
}

// Message is the client-visible view of a queue message.
type Message struct {
	ID           string
	Body         payload.Payload
	Inserted     time.Time
	Expires      time.Time
	NextVisible  time.Time
	DequeueCount int
	// PopReceipt authorises Delete/Update; empty for peeked messages.
	PopReceipt string
}

// New creates an empty queue store with strict FIFO delivery.
func New(clock vclock.Clock) *Store {
	return NewWithConfig(clock, Config{NonFIFOWindow: 1})
}

// NewWithConfig creates a queue store with explicit behaviour knobs.
func NewWithConfig(clock vclock.Clock, cfg Config) *Store {
	if cfg.NonFIFOWindow < 1 {
		cfg.NonFIFOWindow = 1
	}
	return &Store{
		clock:  clock,
		cfg:    cfg,
		rng:    sim.NewRand(cfg.Seed),
		queues: map[string]*queue{},
	}
}

// CreateQueue creates a queue; creating an existing queue fails with
// QueueAlreadyExists.
func (s *Store) CreateQueue(name string) error {
	if err := storecommon.ValidateQueueName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.queues[name]; ok {
		return storecommon.Errf(storecommon.CodeQueueAlreadyExists, 409, "queue %q already exists", name)
	}
	s.queues[name] = &queue{name: name, created: s.clock.Now()}
	return nil
}

// CreateQueueIfNotExists creates name if absent; it reports whether a
// queue was created.
func (s *Store) CreateQueueIfNotExists(name string) (bool, error) {
	err := s.CreateQueue(name)
	if storecommon.IsConflict(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// DeleteQueue removes the queue and all its messages.
func (s *Store) DeleteQueue(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.queues[name]; !ok {
		return queueNotFound(name)
	}
	delete(s.queues, name)
	return nil
}

// QueueExists reports whether the queue exists.
func (s *Store) QueueExists(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.queues[name]
	return ok
}

// ListQueues returns queue names with the given prefix, sorted.
func (s *Store) ListQueues(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for name := range s.queues {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// ClearMessages removes all messages from the queue.
func (s *Store) ClearMessages(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[name]
	if !ok {
		return queueNotFound(name)
	}
	q.msgs = nil
	return nil
}

// Put inserts a message with the given time-to-live (0 means the maximum,
// one week). The payload may be at most 48 KB, the usable fraction of the
// 64 KB wire limit the paper measured.
func (s *Store) Put(name string, body payload.Payload, ttl time.Duration) (Message, error) {
	if body.Len() > storecommon.MaxMessagePayload {
		return Message{}, storecommon.Errf(storecommon.CodeMessageTooLarge, 400,
			"message of %d bytes exceeds the %d-byte usable payload", body.Len(), storecommon.MaxMessagePayload)
	}
	if ttl < 0 || ttl > storecommon.MaxMessageTTL {
		return Message{}, storecommon.Errf(storecommon.CodeInvalidInput, 400, "ttl %v outside (0, %v]", ttl, storecommon.MaxMessageTTL)
	}
	if ttl == 0 {
		ttl = storecommon.MaxMessageTTL
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[name]
	if !ok {
		return Message{}, queueNotFound(name)
	}
	now := s.clock.Now()
	q.nextID++
	m := &message{
		id:          fmt.Sprintf("%s-msg-%d", name, q.nextID),
		body:        body,
		inserted:    now,
		expires:     now.Add(ttl),
		nextVisible: now,
	}
	q.msgs = append(q.msgs, m)
	return m.view(), nil
}

// Get dequeues up to max visible messages, hiding each for the visibility
// timeout (0 means the 30 s default). Each returned message carries a pop
// receipt for Delete/Update. Fewer than max (possibly zero) messages are
// returned when the queue has fewer visible messages.
func (s *Store) Get(name string, max int, visibility time.Duration) ([]Message, error) {
	if visibility == 0 {
		visibility = storecommon.DefaultVisibilityTimeout
	}
	if visibility < 0 || visibility > storecommon.MaxVisibilityTimeout {
		return nil, storecommon.Errf(storecommon.CodeInvalidVisibility, 400, "visibility %v out of range", visibility)
	}
	if max < 1 {
		max = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[name]
	if !ok {
		return nil, queueNotFound(name)
	}
	now := s.clock.Now()
	s.reap(q, now)
	var out []Message
	for len(out) < max {
		m := s.pickVisible(q, now)
		if m == nil {
			break
		}
		m.dequeueCount++
		m.nextVisible = now.Add(visibility)
		s.popSeq++
		m.popReceipt = "pr-" + strconv.FormatUint(s.popSeq, 10)
		out = append(out, m.view())
	}
	return out, nil
}

// GetOne dequeues a single message; ok is false when the queue is empty
// (of visible messages).
func (s *Store) GetOne(name string, visibility time.Duration) (Message, bool, error) {
	msgs, err := s.Get(name, 1, visibility)
	if err != nil || len(msgs) == 0 {
		return Message{}, false, err
	}
	return msgs[0], true, nil
}

// Peek returns up to max visible messages without dequeuing them. Peeked
// messages carry no pop receipt and their dequeue count is unchanged.
func (s *Store) Peek(name string, max int) ([]Message, error) {
	if max < 1 {
		max = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[name]
	if !ok {
		return nil, queueNotFound(name)
	}
	now := s.clock.Now()
	s.reap(q, now)
	var out []Message
	for _, m := range q.msgs {
		if len(out) >= max {
			break
		}
		if !m.nextVisible.After(now) {
			v := m.view()
			v.PopReceipt = ""
			out = append(out, v)
		}
	}
	return out, nil
}

// PeekOne peeks a single message; ok is false when no message is visible.
func (s *Store) PeekOne(name string) (Message, bool, error) {
	msgs, err := s.Peek(name, 1)
	if err != nil || len(msgs) == 0 {
		return Message{}, false, err
	}
	return msgs[0], true, nil
}

// Delete removes a previously dequeued message. The pop receipt must be
// the one issued by the most recent Get and the message must not have
// become visible and been re-dequeued since.
func (s *Store) Delete(name, msgID, popReceipt string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[name]
	if !ok {
		return queueNotFound(name)
	}
	now := s.clock.Now()
	s.reap(q, now)
	for i, m := range q.msgs {
		if m.id != msgID {
			continue
		}
		if m.popReceipt == "" || m.popReceipt != popReceipt {
			return storecommon.Errf(storecommon.CodePopReceiptMismatch, 400, "pop receipt mismatch for %q", msgID)
		}
		q.msgs = append(q.msgs[:i], q.msgs[i+1:]...)
		return nil
	}
	return storecommon.Errf(storecommon.CodeMessageNotFound, 404, "message %q not found", msgID)
}

// ReplicaDelete removes a message by ID without a pop receipt. It exists
// for the geo-replication apply path: the secondary replays the primary's
// committed DeleteMessage without ever having dequeued the message itself,
// so no receipt can exist there. Not part of the client-facing API.
func (s *Store) ReplicaDelete(name, msgID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[name]
	if !ok {
		return queueNotFound(name)
	}
	now := s.clock.Now()
	s.reap(q, now)
	for i, m := range q.msgs {
		if m.id != msgID {
			continue
		}
		q.msgs = append(q.msgs[:i], q.msgs[i+1:]...)
		return nil
	}
	return storecommon.Errf(storecommon.CodeMessageNotFound, 404, "message %q not found", msgID)
}

// ReplicaUpdate replaces a message body by ID without a pop receipt —
// the geo-replication counterpart of Update. Visibility is left alone:
// the secondary never saw the Get that hid the message, so the replayed
// update only carries the content change.
func (s *Store) ReplicaUpdate(name, msgID string, body payload.Payload) error {
	if body.Len() > storecommon.MaxMessagePayload {
		return storecommon.Errf(storecommon.CodeMessageTooLarge, 400, "updated message too large")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[name]
	if !ok {
		return queueNotFound(name)
	}
	now := s.clock.Now()
	s.reap(q, now)
	for _, m := range q.msgs {
		if m.id != msgID {
			continue
		}
		m.body = body
		return nil
	}
	return storecommon.Errf(storecommon.CodeMessageNotFound, 404, "message %q not found", msgID)
}

// Update replaces the body of a dequeued message and resets its visibility
// timeout, returning the new pop receipt (the 2011-era Update Message
// API). The supplied pop receipt must be current.
func (s *Store) Update(name, msgID, popReceipt string, body payload.Payload, visibility time.Duration) (Message, error) {
	if body.Len() > storecommon.MaxMessagePayload {
		return Message{}, storecommon.Errf(storecommon.CodeMessageTooLarge, 400, "updated message too large")
	}
	if visibility == 0 {
		visibility = storecommon.DefaultVisibilityTimeout
	}
	if visibility < 0 || visibility > storecommon.MaxVisibilityTimeout {
		return Message{}, storecommon.Errf(storecommon.CodeInvalidVisibility, 400, "visibility %v out of range", visibility)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[name]
	if !ok {
		return Message{}, queueNotFound(name)
	}
	now := s.clock.Now()
	s.reap(q, now)
	for _, m := range q.msgs {
		if m.id != msgID {
			continue
		}
		if m.popReceipt == "" || m.popReceipt != popReceipt {
			return Message{}, storecommon.Errf(storecommon.CodePopReceiptMismatch, 400, "pop receipt mismatch for %q", msgID)
		}
		m.body = body
		m.nextVisible = now.Add(visibility)
		s.popSeq++
		m.popReceipt = "pr-" + strconv.FormatUint(s.popSeq, 10)
		return m.view(), nil
	}
	return Message{}, storecommon.Errf(storecommon.CodeMessageNotFound, 404, "message %q not found", msgID)
}

// ApproximateCount returns the approximate number of messages in the
// queue, including currently invisible ones — the semantics the paper's
// queue-based barrier (Algorithm 2) relies on.
func (s *Store) ApproximateCount(name string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[name]
	if !ok {
		return 0, queueNotFound(name)
	}
	s.reap(q, s.clock.Now())
	return len(q.msgs), nil
}

// pickVisible selects the next message to dequeue: the head of the visible
// messages, or — when the non-FIFO window is larger than one — a random
// choice among the first window visible messages, emulating Azure's lack
// of a FIFO guarantee.
func (s *Store) pickVisible(q *queue, now time.Time) *message {
	var window []*message
	for _, m := range q.msgs {
		if m.nextVisible.After(now) {
			continue
		}
		window = append(window, m)
		if len(window) == s.cfg.NonFIFOWindow {
			break
		}
	}
	if len(window) == 0 {
		return nil
	}
	return window[s.rng.Intn(len(window))]
}

// reap drops expired messages.
func (s *Store) reap(q *queue, now time.Time) {
	kept := q.msgs[:0]
	for _, m := range q.msgs {
		if m.expires.After(now) {
			kept = append(kept, m)
		}
	}
	for i := len(kept); i < len(q.msgs); i++ {
		q.msgs[i] = nil
	}
	q.msgs = kept
}

func (m *message) view() Message {
	return Message{
		ID:           m.id,
		Body:         m.body,
		Inserted:     m.inserted,
		Expires:      m.expires,
		NextVisible:  m.nextVisible,
		DequeueCount: m.dequeueCount,
		PopReceipt:   m.popReceipt,
	}
}

func queueNotFound(name string) error {
	return storecommon.Errf(storecommon.CodeQueueNotFound, 404, "queue %q not found", name)
}
