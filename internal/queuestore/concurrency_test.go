package queuestore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"azurebench/internal/payload"
	"azurebench/internal/storecommon"
	"azurebench/internal/vclock"
)

// TestConcurrentProducersConsumers is the live-mode safety test: many
// producers and consumers on one queue; every message is consumed exactly
// once (visibility timeouts long enough that no message reappears). Run
// with -race.
func TestConcurrentProducersConsumers(t *testing.T) {
	s := New(vclock.Real{})
	if err := s.CreateQueue("jobs"); err != nil {
		t.Fatal(err)
	}
	const producers, perProducer, consumers = 8, 50, 8
	total := producers * perProducer

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				body := payload.String(fmt.Sprintf("p%d-m%d", p, i))
				if _, err := s.Put("jobs", body, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	var consumed sync.Map
	var count atomic.Int64
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for count.Load() < int64(total) {
				msg, ok, err := s.GetOne("jobs", time.Hour)
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					continue // producers may still be filling
				}
				key := string(msg.Body.Materialize())
				if _, dup := consumed.LoadOrStore(key, true); dup {
					t.Errorf("message %s consumed twice", key)
					return
				}
				if err := s.Delete("jobs", msg.ID, msg.PopReceipt); err != nil {
					t.Error(err)
					return
				}
				count.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := count.Load(); got != int64(total) {
		t.Fatalf("consumed %d, want %d", got, total)
	}
	if n, _ := s.ApproximateCount("jobs"); n != 0 {
		t.Fatalf("%d messages left over", n)
	}
}

// TestConcurrentGetNeverDoubleDelivers: racing consumers on a small pool
// of messages must never hold the same message simultaneously.
func TestConcurrentGetNeverDoubleDelivers(t *testing.T) {
	s := New(vclock.Real{})
	if err := s.CreateQueue("jobs"); err != nil {
		t.Fatal(err)
	}
	const msgs = 40
	for i := 0; i < msgs; i++ {
		if _, err := s.Put("jobs", payload.String(fmt.Sprintf("m%d", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	ids := make(chan string, msgs*2)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				msg, ok, err := s.GetOne("jobs", time.Hour)
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					return
				}
				ids <- msg.ID
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[string]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("message %s delivered to two consumers within its visibility window", id)
		}
		seen[id] = true
	}
	if len(seen) != msgs {
		t.Fatalf("delivered %d distinct messages, want %d", len(seen), msgs)
	}
}

// TestConcurrentQueueManagement hammers create/delete/list from multiple
// goroutines.
func TestConcurrentQueueManagement(t *testing.T) {
	s := New(vclock.Real{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := fmt.Sprintf("queue-%d", g)
			for i := 0; i < 25; i++ {
				if err := s.CreateQueue(name); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Put(name, payload.String("x"), 0); err != nil {
					t.Error(err)
					return
				}
				_ = s.ListQueues("queue-")
				if err := s.DeleteQueue(name); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := s.ListQueues(""); len(got) != 0 {
		t.Fatalf("leftover queues: %v", got)
	}
}

// TestDeleteRaceWithReappearance: if a consumer is too slow (visibility
// expired and another consumer re-got the message), its delete must fail
// with PopReceiptMismatch rather than deleting the other consumer's work.
func TestDeleteRaceWithReappearance(t *testing.T) {
	clk := &vclock.Manual{}
	s := New(clk)
	if err := s.CreateQueue("jobs"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("jobs", payload.String("task"), 0); err != nil {
		t.Fatal(err)
	}
	slow, ok, _ := s.GetOne("jobs", time.Second)
	if !ok {
		t.Fatal("first get failed")
	}
	clk.Advance(2 * time.Second) // slow consumer's claim expires
	fast, ok, _ := s.GetOne("jobs", time.Minute)
	if !ok {
		t.Fatal("reappeared message not claimable")
	}
	if err := s.Delete("jobs", slow.ID, slow.PopReceipt); storecommon.CodeOf(err) != storecommon.CodePopReceiptMismatch {
		t.Fatalf("stale delete = %v, want PopReceiptMismatch", err)
	}
	if err := s.Delete("jobs", fast.ID, fast.PopReceipt); err != nil {
		t.Fatalf("current holder's delete failed: %v", err)
	}
}
