package queuestore

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"azurebench/internal/payload"
	"azurebench/internal/vclock"
)

// TestQuickAgainstReferenceModel drives the engine with random operation
// sequences and cross-checks observable state against a trivial reference
// model. The invariants checked after every step:
//
//   - ApproximateCount matches the reference's live-message count;
//   - a Get never returns a message the reference says is invisible;
//   - messages the reference says are expired are never returned.
func TestQuickAgainstReferenceModel(t *testing.T) {
	type op struct {
		Kind    uint8 // 0 put, 1 get, 2 delete-last, 3 advance clock, 4 peek
		Arg     uint8
		Visible uint8
	}
	f := func(ops []op) bool {
		clk := &vclock.Manual{}
		s := New(clk)
		if err := s.CreateQueue("modelq"); err != nil {
			return false
		}
		type refMsg struct {
			id          string
			expires     time.Time
			nextVisible time.Time
		}
		ref := map[string]*refMsg{}
		var lastGet Message
		haveGet := false
		seq := 0

		refCount := func(now time.Time) int {
			n := 0
			for _, m := range ref {
				if m.expires.After(now) {
					n++
				}
			}
			return n
		}

		for _, o := range ops {
			now := clk.Now()
			switch o.Kind % 5 {
			case 0: // put with a bounded ttl
				ttl := time.Duration(o.Arg%10+1) * time.Minute
				m, err := s.Put("modelq", payload.String(fmt.Sprintf("m%d", seq)), ttl)
				if err != nil {
					return false
				}
				seq++
				ref[m.ID] = &refMsg{id: m.ID, expires: now.Add(ttl), nextVisible: now}
			case 1: // get
				vis := time.Duration(o.Visible%30+1) * time.Second
				m, ok, err := s.GetOne("modelq", vis)
				if err != nil {
					return false
				}
				if ok {
					r, known := ref[m.ID]
					if !known {
						return false // returned a deleted/expired message
					}
					if r.nextVisible.After(now) {
						return false // returned an invisible message
					}
					if !r.expires.After(now) {
						return false // returned an expired message
					}
					r.nextVisible = now.Add(vis)
					lastGet, haveGet = m, true
				}
			case 2: // delete the last gotten message (may be stale)
				if haveGet {
					err := s.Delete("modelq", lastGet.ID, lastGet.PopReceipt)
					if err == nil {
						delete(ref, lastGet.ID)
					}
					// A failed delete (stale receipt / already expired) is
					// legal; the reference keeps its view.
					haveGet = false
				}
			case 3: // advance the clock
				clk.Advance(time.Duration(o.Arg%60+1) * time.Second)
				// Reference reaps lazily through refCount.
			case 4: // peek must not change anything
				before := refCount(clk.Now())
				if _, _, err := s.PeekOne("modelq"); err != nil {
					return false
				}
				if got, _ := s.ApproximateCount("modelq"); got != before {
					return false
				}
			}
			got, err := s.ApproximateCount("modelq")
			if err != nil || got != refCount(clk.Now()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
