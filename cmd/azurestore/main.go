// Command azurestore serves the Azure storage emulator over HTTP (the
// reproduction's Azurite): blob, queue and table services on one listener
// under /blob, /queue and /table. With -throttle it enforces the
// documented scalability targets (500 ops/s per queue and table
// partition, 5 000 ops/s per account) by answering 503 ServerBusy, so
// clients can exercise the paper's back-off-and-retry discipline against
// real sockets.
//
//	azurestore -addr 127.0.0.1:10000 -throttle
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"azurebench/internal/rest"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:10000", "listen address")
	throttle := flag.Bool("throttle", false, "enforce scalability-target throttling")
	cache := flag.Bool("cache", false, "enable the caching service (/cache routes)")
	flag.Parse()

	srv := rest.NewServer(rest.Options{Throttle: *throttle, Cache: *cache})
	fmt.Printf("azurestore: serving blob/queue/table storage on http://%s (throttle=%v cache=%v)\n", *addr, *throttle, *cache)
	fmt.Println("  blob:  PUT/GET  /blob/{container}/{blob}")
	fmt.Println("  queue: POST/GET /queue/{name}/messages")
	fmt.Println("  table: POST/GET /table/{name}")
	if *cache {
		fmt.Println("  cache: PUT/GET  /cache/{name}/{key}")
	}
	log.Fatal(http.ListenAndServe(*addr, srv))
}
