// Command azurestore serves the Azure storage emulator over HTTP (the
// reproduction's Azurite): blob, queue and table services on one listener
// under /blob, /queue and /table. With -throttle it enforces the
// documented scalability targets (500 ops/s per queue and table
// partition, 5 000 ops/s per account) by answering 503 ServerBusy, so
// clients can exercise the paper's back-off-and-retry discipline against
// real sockets.
//
// The emulator always serves per-endpoint request counters and latency
// histograms at /statsz; with -debug it additionally mounts the expvar
// dump at /debug/vars and the pprof profiles under /debug/pprof/.
//
//	azurestore -addr 127.0.0.1:10000 -throttle -debug
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"

	"azurebench/internal/rest"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:10000", "listen address")
	throttle := flag.Bool("throttle", false, "enforce scalability-target throttling")
	cache := flag.Bool("cache", false, "enable the caching service (/cache routes)")
	debug := flag.Bool("debug", false, "expose /debug/vars (expvar) and /debug/pprof/")
	flag.Parse()

	srv := rest.NewServer(rest.Options{Throttle: *throttle, Cache: *cache})
	var handler http.Handler = srv
	if *debug {
		handler = withDebug(srv)
	}
	fmt.Printf("azurestore: serving blob/queue/table storage on http://%s (throttle=%v cache=%v debug=%v)\n", *addr, *throttle, *cache, *debug)
	fmt.Println("  blob:  PUT/GET  /blob/{container}/{blob}")
	fmt.Println("  queue: POST/GET /queue/{name}/messages")
	fmt.Println("  table: POST/GET /table/{name}")
	if *cache {
		fmt.Println("  cache: PUT/GET  /cache/{name}/{key}")
	}
	fmt.Println("  stats: GET      /statsz")
	if *debug {
		fmt.Println("  debug: GET      /debug/vars, /debug/pprof/")
	}
	log.Fatal(http.ListenAndServe(*addr, handler))
}

// withDebug mounts the expvar and pprof debug routes in front of the
// emulator. The endpoint stats are published as the "azurestore" expvar so
// /debug/vars carries the same counters as /statsz.
func withDebug(srv *rest.Server) http.Handler {
	expvar.Publish("azurestore", expvar.Func(func() any {
		return srv.MetricsSnapshot()
	}))
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", srv)
	return mux
}
