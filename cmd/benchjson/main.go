// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON report, so benchmark baselines can be archived
// and diffed across commits:
//
//	go test -run='^$' -bench=. -benchmem ./... | go run ./cmd/benchjson -o BENCH_2026-08-06.json
//
// Input lines are echoed to stderr as they arrive so the (long) bench
// run stays visible while piping.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	flag.Parse()

	rep, err := Parse(io.TeeReader(os.Stdin, os.Stderr))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if rep.Failed {
		fmt.Fprintln(os.Stderr, "benchjson: bench run reported FAIL")
		os.Exit(1)
	}
}
