// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON report, so benchmark baselines can be archived
// and diffed across commits:
//
//	go test -run='^$' -bench=. -benchmem ./... | go run ./cmd/benchjson -o BENCH_2026-08-06.json
//
// Input lines are echoed to stderr as they arrive so the (long) bench
// run stays visible while piping.
//
// With -compare, two archived reports are diffed instead (no stdin):
//
//	go run ./cmd/benchjson -compare -threshold 25 old.json new.json
//
// exits non-zero when any benchmark's ns/op regressed by more than the
// threshold percentage — the CI bench-regression gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	compare := flag.Bool("compare", false, "compare two JSON reports (baseline, candidate) instead of reading stdin")
	threshold := flag.Float64("threshold", 25, "with -compare: maximum tolerated ns/op slowdown in percent")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: baseline.json candidate.json")
			os.Exit(2)
		}
		old, err := loadReport(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		cur, err := loadReport(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		text, pass := RenderCompare(compareReports(old, cur, *threshold))
		fmt.Print(text)
		if !pass {
			os.Exit(1)
		}
		return
	}

	rep, err := Parse(io.TeeReader(os.Stdin, os.Stderr))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if rep.Failed {
		fmt.Fprintln(os.Stderr, "benchjson: bench run reported FAIL")
		os.Exit(1)
	}
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// compareReports adapts Compare's results to RenderCompare's signature so
// main can chain the two calls.
func compareReports(old, cur *Report, threshold float64) ([]Delta, []string, []string, float64) {
	deltas, onlyOld, onlyNew := Compare(old, cur, threshold)
	return deltas, onlyOld, onlyNew, threshold
}
