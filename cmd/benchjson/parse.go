package main

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Report is the machine-readable form of one `go test -bench` run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Failed     bool        `json:"failed,omitempty"`
}

// Benchmark is one result line. NsPerOp/BytesPerOp/AllocsPerOp cover the
// standard -benchmem columns; the georepl recovery metrics emitted by
// BenchmarkGeorepl get typed fields of their own; Metrics holds any other
// b.ReportMetric units.
type Benchmark struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`

	// Geo-replication recovery columns ("rpo-records", "rto-ms",
	// "staleness-p95-ms"). RPORecords is a pointer so a measured zero
	// (no data lost) survives the round trip distinguishably from absent.
	RPORecords     *float64           `json:"rpo_records,omitempty"`
	RTOMs          float64            `json:"rto_ms,omitempty"`
	StalenessP95Ms float64            `json:"staleness_p95_ms,omitempty"`
	Metrics        map[string]float64 `json:"metrics,omitempty"`
}

// Parse reads `go test -bench` output and collects every benchmark line,
// tolerating interleaved test chatter and empty input. Lines it cannot
// parse are ignored rather than fatal: bench output is a human format
// first, and one malformed line should not void a long run.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "FAIL"):
			rep.Failed = true
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				b.Pkg = pkg
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkFig6_QueuePerWorker-8   3   400123456 ns/op   1024 B/op   12 allocs/op
//
// The -8 procs suffix is absent when GOMAXPROCS is 1.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if n, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], n
		}
	}
	b.Name = strings.TrimPrefix(b.Name, "Benchmark")
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "rpo-records":
			rpo := v
			b.RPORecords = &rpo
		case "rto-ms":
			b.RTOMs = v
		case "staleness-p95-ms":
			b.StalenessP95Ms = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
