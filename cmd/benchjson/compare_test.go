package main

import (
	"strings"
	"testing"
)

func rep(benches ...Benchmark) *Report { return &Report{Benchmarks: benches} }

func bench(pkg, name string, procs int, ns float64) Benchmark {
	return Benchmark{Pkg: pkg, Name: name, Procs: procs, NsPerOp: ns}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := rep(
		bench("azurebench/internal/core", "Fig4", 8, 1000),
		bench("azurebench/internal/core", "Fig6", 8, 2000),
		bench("azurebench/internal/core", "Gone", 8, 500),
	)
	cur := rep(
		bench("azurebench/internal/core", "Fig4", 8, 1200),  // +20%: within threshold
		bench("azurebench/internal/core", "Fig6", 8, 2600),  // +30%: regression
		bench("azurebench/internal/core", "Fresh", 8, 9999), // new benchmark
	)
	deltas, onlyOld, onlyNew := Compare(old, cur, 25)
	if len(deltas) != 2 {
		t.Fatalf("deltas = %+v", deltas)
	}
	if deltas[0].Key != "azurebench/internal/core.Fig4-8" || deltas[0].Regression {
		t.Errorf("Fig4 delta wrong: %+v", deltas[0])
	}
	if !deltas[1].Regression || deltas[1].Pct < 29 || deltas[1].Pct > 31 {
		t.Errorf("Fig6 should regress ~30%%: %+v", deltas[1])
	}
	if len(onlyOld) != 1 || !strings.Contains(onlyOld[0], "Gone") {
		t.Errorf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || !strings.Contains(onlyNew[0], "Fresh") {
		t.Errorf("onlyNew = %v", onlyNew)
	}

	text, pass := RenderCompare(deltas, onlyOld, onlyNew, 25)
	if pass {
		t.Error("comparison with a regression passed")
	}
	for _, want := range []string{"!!", "FAIL", "only in baseline", "only in candidate", "+30.0%"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendering missing %q:\n%s", want, text)
		}
	}
}

func TestComparePassesWithinThreshold(t *testing.T) {
	old := rep(bench("p", "A", 1, 1000), bench("p", "B", 1, 1000))
	cur := rep(bench("p", "A", 1, 1240), bench("p", "B", 1, 400)) // +24%, -60%
	deltas, onlyOld, onlyNew := Compare(old, cur, 25)
	text, pass := RenderCompare(deltas, onlyOld, onlyNew, 25)
	if !pass {
		t.Errorf("within-threshold comparison failed:\n%s", text)
	}
	if !strings.Contains(text, "PASS") {
		t.Errorf("rendering missing PASS:\n%s", text)
	}
}

func TestCompareDistinguishesProcsAndPkg(t *testing.T) {
	// Same name, different procs/pkg must not match each other.
	old := rep(bench("p1", "A", 1, 100), bench("p1", "A", 8, 100))
	cur := rep(bench("p1", "A", 1, 100), bench("p2", "A", 8, 100))
	deltas, onlyOld, onlyNew := Compare(old, cur, 25)
	if len(deltas) != 1 || deltas[0].Key != "p1.A-1" {
		t.Errorf("deltas = %+v", deltas)
	}
	if len(onlyOld) != 1 || len(onlyNew) != 1 {
		t.Errorf("onlyOld=%v onlyNew=%v", onlyOld, onlyNew)
	}
}

func TestCompareSkipsZeroNs(t *testing.T) {
	old := rep(bench("p", "A", 1, 0))
	cur := rep(bench("p", "A", 1, 500))
	deltas, _, _ := Compare(old, cur, 25)
	if len(deltas) != 0 {
		t.Errorf("zero-ns baseline should be skipped: %+v", deltas)
	}
}

func TestComparePercentileDeltas(t *testing.T) {
	withP := func(b Benchmark, p50, p99 float64) Benchmark {
		b.Metrics = map[string]float64{"p50-ns": p50, "p99-ns": p99}
		return b
	}
	old := rep(
		withP(bench("p", "Traced", 1, 1000), 2_000_000, 40_000_000),
		bench("p", "Plain", 1, 1000), // no percentile metrics
	)
	cur := rep(
		withP(bench("p", "Traced", 1, 1000), 2_200_000, 80_000_000),
		bench("p", "Plain", 1, 1000),
	)
	deltas, _, _ := Compare(old, cur, 25)
	if len(deltas) != 2 {
		t.Fatalf("deltas = %+v", deltas)
	}
	// Sorted by key: Plain < Traced.
	if len(deltas[0].Percentiles) != 0 {
		t.Errorf("Plain should carry no percentile deltas: %+v", deltas[0].Percentiles)
	}
	ps := deltas[1].Percentiles
	if len(ps) != 2 || ps[0].Name != "p50" || ps[1].Name != "p99" {
		t.Fatalf("Traced percentiles = %+v", ps)
	}
	if ps[0].Pct < 9 || ps[0].Pct > 11 {
		t.Errorf("p50 delta = %+v, want ~+10%%", ps[0])
	}
	if ps[1].Pct != 100 {
		t.Errorf("p99 delta = %+v, want +100%%", ps[1])
	}
	// A p99 blow-up alone must not fail the gate (ns/op is unchanged).
	text, pass := RenderCompare(deltas, nil, nil, 25)
	if !pass {
		t.Errorf("percentile-only shift failed the gate:\n%s", text)
	}
	for _, want := range []string{"p50-ns", "p99-ns", "+100.0%"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendering missing %q:\n%s", want, text)
		}
	}
}

func TestCompareMissingSidePercentiles(t *testing.T) {
	old := rep(bench("p", "A", 1, 1000))
	cur0 := bench("p", "A", 1, 1000)
	cur0.Metrics = map[string]float64{"p99-ns": 5_000_000}
	deltas, _, _ := Compare(old, rep(cur0), 25)
	if len(deltas) != 1 || len(deltas[0].Percentiles) != 0 {
		t.Fatalf("one-sided percentile metrics must not produce deltas: %+v", deltas)
	}
}
