package main

import (
	"fmt"
	"sort"
	"strings"
)

// Delta is one benchmark compared across two reports.
type Delta struct {
	Key        string  // pkg + name + procs, the match identity
	OldNs      float64 // ns/op in the baseline
	NewNs      float64 // ns/op in the candidate
	Pct        float64 // (new-old)/old * 100
	Regression bool    // Pct exceeds the threshold
	// Percentiles holds latency-percentile deltas for benchmarks that
	// report histogram-derived metrics (p50-ns, p99-ns via ReportMetric)
	// on both sides; empty otherwise. Percentile shifts are informational
	// and never fail the comparison — ns/op stays the gate.
	Percentiles []PctDelta
}

// PctDelta is one reported percentile compared across the two runs.
type PctDelta struct {
	Name string  // "p50", "p99"
	Old  float64 // ns in the baseline
	New  float64 // ns in the candidate
	Pct  float64 // (new-old)/old * 100
}

// percentileUnits are the ReportMetric units carrying histogram-derived
// latency percentiles, in render order.
var percentileUnits = []struct{ unit, name string }{
	{"p50-ns", "p50"},
	{"p99-ns", "p99"},
}

// percentileDeltas extracts the percentile metrics both sides report.
func percentileDeltas(old, cur Benchmark) []PctDelta {
	var out []PctDelta
	for _, pu := range percentileUnits {
		ov, on := old.Metrics[pu.unit]
		nv, nn := cur.Metrics[pu.unit]
		if !on || !nn || ov <= 0 || nv <= 0 {
			continue
		}
		out = append(out, PctDelta{
			Name: pu.name,
			Old:  ov,
			New:  nv,
			Pct:  (nv - ov) / ov * 100,
		})
	}
	return out
}

// benchKey is the identity benchmarks are matched on across runs.
func benchKey(b Benchmark) string {
	return fmt.Sprintf("%s.%s-%d", b.Pkg, b.Name, b.Procs)
}

// Compare matches benchmarks between a baseline and a candidate report by
// package+name+procs and flags every ns/op slowdown above thresholdPct.
// Benchmarks present on only one side are reported but never fail the
// comparison (suites grow and shrink legitimately). Zero-ns entries are
// skipped: they carry no timing signal.
func Compare(old, cur *Report, thresholdPct float64) (deltas []Delta, onlyOld, onlyNew []string) {
	base := map[string]Benchmark{}
	for _, b := range old.Benchmarks {
		base[benchKey(b)] = b
	}
	seen := map[string]bool{}
	for _, b := range cur.Benchmarks {
		key := benchKey(b)
		seen[key] = true
		ob, ok := base[key]
		if !ok {
			onlyNew = append(onlyNew, key)
			continue
		}
		if ob.NsPerOp <= 0 || b.NsPerOp <= 0 {
			continue
		}
		pct := (b.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100
		deltas = append(deltas, Delta{
			Key:         key,
			OldNs:       ob.NsPerOp,
			NewNs:       b.NsPerOp,
			Pct:         pct,
			Regression:  pct > thresholdPct,
			Percentiles: percentileDeltas(ob, b),
		})
	}
	for _, b := range old.Benchmarks {
		if key := benchKey(b); !seen[key] {
			onlyOld = append(onlyOld, key)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Key < deltas[j].Key })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return deltas, onlyOld, onlyNew
}

// RenderCompare formats the comparison, worst regressions flagged, and
// reports whether the candidate passes the threshold.
func RenderCompare(deltas []Delta, onlyOld, onlyNew []string, thresholdPct float64) (string, bool) {
	var b strings.Builder
	pass := true
	for _, d := range deltas {
		mark := "  "
		if d.Regression {
			mark = "!!"
			pass = false
		}
		fmt.Fprintf(&b, "%s %-60s %14.0f -> %14.0f ns/op  %+7.1f%%\n",
			mark, d.Key, d.OldNs, d.NewNs, d.Pct)
		for _, p := range d.Percentiles {
			fmt.Fprintf(&b, "   %-60s %14.0f -> %14.0f %s-ns  %+7.1f%%\n",
				"", p.Old, p.New, p.Name, p.Pct)
		}
	}
	for _, k := range onlyOld {
		fmt.Fprintf(&b, "-- %-60s only in baseline\n", k)
	}
	for _, k := range onlyNew {
		fmt.Fprintf(&b, "++ %-60s only in candidate\n", k)
	}
	if pass {
		fmt.Fprintf(&b, "PASS: no benchmark slowed down more than %g%%\n", thresholdPct)
	} else {
		fmt.Fprintf(&b, "FAIL: benchmarks marked !! slowed down more than %g%%\n", thresholdPct)
	}
	return b.String(), pass
}
