package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: azurebench
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTableI_Lookup 	121339034	        10.01 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig6_QueuePerWorker-8   	       3	 400123456 ns/op	 1048576 B/op	    1234 allocs/op
BenchmarkCustomMetric-8   	     100	     50000 ns/op	        42.5 msgs/s
PASS
ok  	azurebench	2.218s
pkg: azurebench/internal/sim
BenchmarkEventLoop-8	 5000000	       250.0 ns/op	      16 B/op	       1 allocs/op
PASS
ok  	azurebench/internal/sim	1.500s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("metadata = %+v", rep)
	}
	if rep.Failed {
		t.Fatal("PASS run marked failed")
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("benchmarks = %d: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}

	// No -procs suffix: GOMAXPROCS 1.
	b := rep.Benchmarks[0]
	if b.Name != "TableI_Lookup" || b.Procs != 1 || b.Pkg != "azurebench" {
		t.Fatalf("bench 0 = %+v", b)
	}
	if b.Iterations != 121339034 || b.NsPerOp != 10.01 {
		t.Fatalf("bench 0 values = %+v", b)
	}

	b = rep.Benchmarks[1]
	if b.Name != "Fig6_QueuePerWorker" || b.Procs != 8 {
		t.Fatalf("bench 1 = %+v", b)
	}
	if b.NsPerOp != 400123456 || b.BytesPerOp != 1048576 || b.AllocsPerOp != 1234 {
		t.Fatalf("bench 1 values = %+v", b)
	}

	// Custom b.ReportMetric units land in Metrics.
	b = rep.Benchmarks[2]
	if b.Metrics["msgs/s"] != 42.5 {
		t.Fatalf("bench 2 metrics = %+v", b.Metrics)
	}

	// The pkg: line re-scopes later benchmarks.
	b = rep.Benchmarks[3]
	if b.Pkg != "azurebench/internal/sim" || b.Name != "EventLoop" {
		t.Fatalf("bench 3 = %+v", b)
	}
}

func TestParseFailAndEmpty(t *testing.T) {
	rep, err := Parse(strings.NewReader("FAIL\tazurebench\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed {
		t.Fatal("FAIL line not detected")
	}

	rep, err = Parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Benchmarks == nil || len(rep.Benchmarks) != 0 {
		t.Fatalf("empty input benchmarks = %#v", rep.Benchmarks)
	}
}

func TestParseIgnoresMalformedBenchLines(t *testing.T) {
	in := "BenchmarkBroken-8\tnot-a-number\t10 ns/op\nBenchmarkOK-2\t5\t100 ns/op\n"
	rep, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "OK" {
		t.Fatalf("benchmarks = %+v", rep.Benchmarks)
	}
}

func TestParseGeoreplColumns(t *testing.T) {
	in := "BenchmarkGeorepl-8\t12\t9876543 ns/op\t0 rpo-records\t2648.5 rto-ms\t1506.9 staleness-p95-ms\t42 splits/op\n"
	rep, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("benchmarks = %+v", rep.Benchmarks)
	}
	b := rep.Benchmarks[0]
	if b.RPORecords == nil || *b.RPORecords != 0 {
		t.Errorf("RPORecords = %v, want pointer to 0 (a measured zero must survive)", b.RPORecords)
	}
	if b.RTOMs != 2648.5 {
		t.Errorf("RTOMs = %v, want 2648.5", b.RTOMs)
	}
	if b.StalenessP95Ms != 1506.9 {
		t.Errorf("StalenessP95Ms = %v, want 1506.9", b.StalenessP95Ms)
	}
	// Unrecognised units still land in the open-ended map.
	if b.Metrics["splits/op"] != 42 {
		t.Errorf("Metrics = %v, want splits/op 42", b.Metrics)
	}
	out, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"rpo_records":0`, `"rto_ms":2648.5`, `"staleness_p95_ms":1506.9`} {
		if !strings.Contains(string(out), want) {
			t.Errorf("JSON %s missing %s", out, want)
		}
	}
}
