// Command azurebench regenerates the paper's tables and figures on the
// simulated Azure cloud.
//
// Usage:
//
//	azurebench -experiment all            # every table/figure, paper scale
//	azurebench -experiment fig4,fig6      # a subset
//	azurebench -quick                     # ~1/10-scale smoke run
//	azurebench -list                      # enumerate experiments
//	azurebench -experiment fig8 -csv      # additionally emit CSV blocks
//	azurebench -workers 1,8,64            # override the worker sweep
//	azurebench -trace                     # per-op + per-stage time attribution
//	azurebench -tracefile trace.jsonl     # export every traced op as JSONL
//	azurebench -telemetry                 # station timelines under the figures
//	azurebench -statsfile stats.jsonl     # export telemetry samples as JSONL
//	azurebench -experiment georepl -regions 2 -geolag 500ms,5s -failoverat 20s
//	azurebench -scenario flashcrowd.yaml  # run a declarative scenario file
//	azurebench -scenario-dir examples/scenarios -quick   # run a whole library
//	azurebench -digest                    # print each report's content digest
//
// Scenario runs exit non-zero when any SLO assertion fails, so a scenario
// file doubles as a CI gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"azurebench/internal/core"
	"azurebench/internal/scenario"
)

func main() {
	var (
		experiment  = flag.String("experiment", "all", "experiment id(s), comma separated, or 'all'")
		quick       = flag.Bool("quick", false, "run the reduced-scale configuration")
		listOnly    = flag.Bool("list", false, "list experiments and exit")
		csv         = flag.Bool("csv", false, "also print CSV data blocks")
		seed        = flag.Int64("seed", 0, "override simulation seed (0 = default)")
		workers     = flag.String("workers", "", "override worker sweep, e.g. 1,8,64")
		traceOps    = flag.Bool("trace", false, "print per-operation and per-stage trace summaries after each experiment")
		traceFile   = flag.String("tracefile", "", "write every traced operation as JSONL to this file (implies -trace collection)")
		telemetry   = flag.Bool("telemetry", false, "sample station telemetry and render timelines with the figures")
		statsFile   = flag.String("statsfile", "", "write telemetry samples as JSONL to this file (implies -telemetry)")
		outDir      = flag.String("o", "", "also write per-experiment .txt and .csv files into this directory")
		faultRates  = flag.String("faultrates", "", "override the faults experiment's rate sweep, e.g. 0,0.01,0.05")
		regions     = flag.Int("regions", 0, "override the georepl experiment's region count (2 enables geo-replication)")
		geoLag      = flag.String("geolag", "", "override the georepl lag-bound sweep, e.g. 500ms,2s,5s")
		failoverAt  = flag.String("failoverat", "", "override when the georepl primary-region outage starts, e.g. 20s")
		scenarios   = flag.String("scenario", "", "scenario file(s) to run, comma separated (see examples/scenarios)")
		scenarioDir = flag.String("scenario-dir", "", "run every *.yaml scenario in this directory, sorted by name")
		digest      = flag.Bool("digest", false, "print each report's content digest (sha256 over figure CSVs)")
		ckptAt      = flag.String("checkpoint-at", "", "capture a full simulation snapshot at this virtual time (requires -checkpoint-file and exactly one -experiment id)")
		ckptFile    = flag.String("checkpoint-file", "", "snapshot destination for -checkpoint-at")
		restoreFrom = flag.String("restore", "", "replay the experiment checkpointed in this snapshot file, verifying state at the checkpoint instant (ignores config flags: the snapshot embeds its configuration)")
	)
	flag.Parse()

	if *listOnly {
		for _, e := range core.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := core.DefaultConfig()
	if *quick {
		cfg = core.QuickConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.TraceOps = *traceOps || *traceFile != ""
	cfg.Telemetry = *telemetry || *statsFile != ""
	if *workers != "" {
		sweep, err := parseInts(*workers)
		if err != nil {
			fatalf("bad -workers: %v", err)
		}
		cfg.Workers = sweep
	}
	if *faultRates != "" {
		rates, err := parseFloats(*faultRates)
		if err != nil {
			fatalf("bad -faultrates: %v", err)
		}
		cfg.FaultRates = rates
	}
	if *regions != 0 {
		if *regions != 1 && *regions != 2 {
			fatalf("bad -regions: %d (the model supports 1 or 2)", *regions)
		}
		cfg.Params.GeoRegions = *regions
	}
	if *geoLag != "" {
		bounds, err := parseDurations(*geoLag)
		if err != nil {
			fatalf("bad -geolag: %v", err)
		}
		cfg.GeoLagBounds = bounds
	}
	if *failoverAt != "" {
		at, err := time.ParseDuration(*failoverAt)
		if err != nil || at <= 0 {
			fatalf("bad -failoverat: %q (want a positive duration like 20s)", *failoverAt)
		}
		cfg.GeoFailoverAt = at
	}

	out := &output{
		csv:     *csv,
		digest:  *digest,
		trace:   *traceOps,
		outDir:  *outDir,
		verdict: true,
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatalf("creating -tracefile: %v", err)
		}
		out.traceOut = f
		defer f.Close()
	}
	if *statsFile != "" {
		f, err := os.Create(*statsFile)
		if err != nil {
			fatalf("creating -statsfile: %v", err)
		}
		out.statsOut = f
	}

	var checkpointAt time.Duration
	if *ckptAt != "" {
		at, err := time.ParseDuration(*ckptAt)
		if err != nil || at <= 0 {
			fatalf("bad -checkpoint-at: %q (want a positive virtual duration like 6s)", *ckptAt)
		}
		if *ckptFile == "" {
			fatalf("-checkpoint-at requires -checkpoint-file")
		}
		if *scenarios != "" || *scenarioDir != "" {
			fatalf("-checkpoint-at applies to experiments; scenarios checkpoint via their checkpoint: stanza")
		}
		checkpointAt = at
	}

	switch {
	case *restoreFrom != "":
		if *scenarios != "" || *scenarioDir != "" || checkpointAt != 0 {
			fatalf("-restore runs a snapshot on its own (it embeds its experiment and configuration)")
		}
		rep, suite, err := core.Restore(*restoreFrom)
		if err != nil {
			fatalf("%v", err)
		}
		out.emit(suite, rep, "")
		out.stats(suite)
	case *scenarios != "" || *scenarioDir != "":
		paths := scenarioPaths(*scenarios, *scenarioDir)
		runScenarios(cfg, paths, scenario.Options{Quick: *quick}, out)
	default:
		runExperiments(cfg, *experiment, out, checkpointAt, *ckptFile)
	}

	if out.statsOut != nil {
		if err := out.statsOut.Close(); err != nil {
			fatalf("closing -statsfile: %v", err)
		}
	}
	if !out.verdict {
		os.Exit(1)
	}
}

// scenarioPaths expands -scenario and -scenario-dir into a file list.
func scenarioPaths(list, dir string) []string {
	var paths []string
	if list != "" {
		for _, p := range strings.Split(list, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				fatalf("bad -scenario: empty path in %q", list)
			}
			paths = append(paths, p)
		}
	}
	if dir != "" {
		glob, err := filepath.Glob(filepath.Join(dir, "*.yaml"))
		if err != nil || len(glob) == 0 {
			fatalf("-scenario-dir %s: no *.yaml scenarios found", dir)
		}
		sort.Strings(glob)
		paths = append(paths, glob...)
	}
	return paths
}

// runExperiments runs registered experiments on one shared suite. All ids
// are validated before anything runs, so a typo late in the list cannot
// waste a long run. checkpointAt/checkpointFile, when set, arm a
// mid-run snapshot capture and require exactly one experiment id.
func runExperiments(cfg core.Config, list string, out *output, checkpointAt time.Duration, checkpointFile string) {
	ids := strings.Split(list, ",")
	if list == "all" {
		ids = nil
		for _, e := range core.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	var unknown []string
	for i, id := range ids {
		ids[i] = strings.TrimSpace(id)
		if ids[i] == "" {
			fatalf("bad -experiment: empty id in %q", list)
		}
		if _, ok := core.Lookup(ids[i]); !ok {
			unknown = append(unknown, strconv.Quote(ids[i]))
		}
	}
	if len(unknown) > 0 {
		var valid []string
		for _, e := range core.Experiments() {
			valid = append(valid, e.ID)
		}
		fatalf("unknown experiment(s) %s (valid: %s)",
			strings.Join(unknown, ", "), strings.Join(valid, ", "))
	}
	suite := core.NewSuite(cfg)
	if checkpointAt > 0 {
		if len(ids) != 1 || list == "all" {
			fatalf("-checkpoint-at requires exactly one -experiment id (got %q)", list)
		}
		if err := suite.Checkpoint(ids[0], checkpointAt, checkpointFile); err != nil {
			fatalf("%v", err)
		}
	}
	for _, id := range ids {
		exp, _ := core.Lookup(id)
		rep := exp.Run(suite)
		out.emit(suite, rep, "")
	}
	if checkpointAt > 0 {
		if err := suite.CheckpointOutcome(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("checkpoint written: %s (virtual %v)\n", checkpointFile, checkpointAt)
	}
	out.stats(suite)
}

// runScenarios loads and runs each scenario on its own suite (a scenario
// may patch the configuration, and isolation keeps digests comparable to
// single-experiment runs).
func runScenarios(base core.Config, paths []string, opts scenario.Options, out *output) {
	// Load everything first: a broken file fails fast, before any run.
	specs := make([]*scenario.Spec, len(paths))
	for i, path := range paths {
		sp, err := scenario.Load(path)
		if err != nil {
			fatalf("%v", err)
		}
		specs[i] = sp
	}
	for i, sp := range specs {
		cfg := base
		sp.Apply(&cfg)
		suite := core.NewSuite(cfg)
		res, err := scenario.Run(suite, sp, opts)
		if err != nil {
			fatalf("%s: %v", paths[i], err)
		}
		verdict := ""
		if len(res.SLO) > 0 {
			verdict = res.RenderSLO()
			if !res.Passed() {
				out.verdict = false
			}
		}
		out.emit(suite, res.Report, verdict)
		out.stats(suite)
	}
}

// output is the shared per-report sink: rendering, SLO verdicts, digests,
// trace summaries/JSONL, CSV blocks and -o exports all live here so
// experiment and scenario runs emit identically-shaped artifacts.
type output struct {
	csv      bool
	digest   bool
	trace    bool
	outDir   string
	traceOut *os.File
	statsOut *os.File
	verdict  bool // false once any scenario SLO fails
}

func (o *output) emit(suite *core.Suite, rep *core.Report, verdict string) {
	fmt.Println(rep.Render())
	if verdict != "" {
		fmt.Print(verdict)
	}
	if o.digest {
		fmt.Printf("digest %s %s\n", rep.ID, rep.CSVDigest())
	}
	if o.outDir != "" {
		if err := writeReport(o.outDir, rep); err != nil {
			fatalf("writing %s report: %v", rep.ID, err)
		}
	}
	if log := suite.TraceLog(); log != nil {
		if o.trace {
			fmt.Printf("--- operation trace: %s ---\n%s\n", rep.ID, log.Summary())
			fmt.Printf("--- stage attribution: %s ---\n%s\n", rep.ID, log.StageSummary())
		}
		if o.traceOut != nil {
			// Mark each report's section so one JSONL file holds the whole
			// run.
			fmt.Fprintf(o.traceOut, "{\"experiment\":%q}\n", rep.ID)
			if err := log.WriteJSONL(o.traceOut); err != nil {
				fatalf("writing -tracefile: %v", err)
			}
		}
		log.Reset()
	}
	if o.csv {
		for _, fig := range rep.Figures {
			fmt.Printf("--- csv: %s ---\n%s\n", fig.Title, fig.CSV())
		}
	}
}

// stats appends the suite's telemetry samples to -statsfile (scenario
// suites are per-file, so records accumulate in run order).
func (o *output) stats(suite *core.Suite) {
	if o.statsOut == nil {
		return
	}
	if err := suite.WriteStats(o.statsOut); err != nil {
		fatalf("writing -statsfile: %v", err)
	}
}

// writeReport writes the rendered report and one CSV per figure.
func writeReport(dir string, rep *core.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, rep.ID+".txt"), []byte(rep.Render()), 0o644); err != nil {
		return err
	}
	for i, fig := range rep.Figures {
		name := fmt.Sprintf("%s-%d.csv", rep.ID, i+1)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(fig.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("worker count %d < 1", n)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseDurations(s string) ([]time.Duration, error) {
	var out []time.Duration
	for _, part := range strings.Split(s, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if d <= 0 {
			return nil, fmt.Errorf("lag bound %v must be positive", d)
		}
		out = append(out, d)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("fault rate %g outside [0, 1]", f)
		}
		out = append(out, f)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "azurebench: "+format+"\n", args...)
	os.Exit(1)
}
