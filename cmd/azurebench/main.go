// Command azurebench regenerates the paper's tables and figures on the
// simulated Azure cloud.
//
// Usage:
//
//	azurebench -experiment all            # every table/figure, paper scale
//	azurebench -experiment fig4,fig6      # a subset
//	azurebench -quick                     # ~1/10-scale smoke run
//	azurebench -list                      # enumerate experiments
//	azurebench -experiment fig8 -csv      # additionally emit CSV blocks
//	azurebench -workers 1,8,64            # override the worker sweep
//	azurebench -trace                     # per-op + per-stage time attribution
//	azurebench -tracefile trace.jsonl     # export every traced op as JSONL
//	azurebench -telemetry                 # station timelines under the figures
//	azurebench -statsfile stats.jsonl     # export telemetry samples as JSONL
//	azurebench -experiment georepl -regions 2 -geolag 500ms,5s -failoverat 20s
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"azurebench/internal/core"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id(s), comma separated, or 'all'")
		quick      = flag.Bool("quick", false, "run the reduced-scale configuration")
		listOnly   = flag.Bool("list", false, "list experiments and exit")
		csv        = flag.Bool("csv", false, "also print CSV data blocks")
		seed       = flag.Int64("seed", 0, "override simulation seed (0 = default)")
		workers    = flag.String("workers", "", "override worker sweep, e.g. 1,8,64")
		traceOps   = flag.Bool("trace", false, "print per-operation and per-stage trace summaries after each experiment")
		traceFile  = flag.String("tracefile", "", "write every traced operation as JSONL to this file (implies -trace collection)")
		telemetry  = flag.Bool("telemetry", false, "sample station telemetry and render timelines with the figures")
		statsFile  = flag.String("statsfile", "", "write telemetry samples as JSONL to this file (implies -telemetry)")
		outDir     = flag.String("o", "", "also write per-experiment .txt and .csv files into this directory")
		faultRates = flag.String("faultrates", "", "override the faults experiment's rate sweep, e.g. 0,0.01,0.05")
		regions    = flag.Int("regions", 0, "override the georepl experiment's region count (2 enables geo-replication)")
		geoLag     = flag.String("geolag", "", "override the georepl lag-bound sweep, e.g. 500ms,2s,5s")
		failoverAt = flag.String("failoverat", "", "override when the georepl primary-region outage starts, e.g. 20s")
	)
	flag.Parse()

	if *listOnly {
		for _, e := range core.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := core.DefaultConfig()
	if *quick {
		cfg = core.QuickConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.TraceOps = *traceOps || *traceFile != ""
	cfg.Telemetry = *telemetry || *statsFile != ""
	if *workers != "" {
		sweep, err := parseInts(*workers)
		if err != nil {
			fatalf("bad -workers: %v", err)
		}
		cfg.Workers = sweep
	}
	if *faultRates != "" {
		rates, err := parseFloats(*faultRates)
		if err != nil {
			fatalf("bad -faultrates: %v", err)
		}
		cfg.FaultRates = rates
	}
	if *regions != 0 {
		if *regions != 1 && *regions != 2 {
			fatalf("bad -regions: %d (the model supports 1 or 2)", *regions)
		}
		cfg.Params.GeoRegions = *regions
	}
	if *geoLag != "" {
		bounds, err := parseDurations(*geoLag)
		if err != nil {
			fatalf("bad -geolag: %v", err)
		}
		cfg.GeoLagBounds = bounds
	}
	if *failoverAt != "" {
		at, err := time.ParseDuration(*failoverAt)
		if err != nil || at <= 0 {
			fatalf("bad -failoverat: %q (want a positive duration like 20s)", *failoverAt)
		}
		cfg.GeoFailoverAt = at
	}
	suite := core.NewSuite(cfg)

	var traceOut *os.File
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatalf("creating -tracefile: %v", err)
		}
		traceOut = f
		defer traceOut.Close()
	}

	ids := strings.Split(*experiment, ",")
	if *experiment == "all" {
		ids = nil
		for _, e := range core.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		exp, ok := core.Lookup(id)
		if !ok {
			fatalf("unknown experiment %q (try -list)", id)
		}
		rep := exp.Run(suite)
		fmt.Println(rep.Render())
		if *outDir != "" {
			if err := writeReport(*outDir, rep); err != nil {
				fatalf("writing %s report: %v", id, err)
			}
		}
		if log := suite.TraceLog(); log != nil {
			if *traceOps {
				fmt.Printf("--- operation trace: %s ---\n%s\n", id, log.Summary())
				fmt.Printf("--- stage attribution: %s ---\n%s\n", id, log.StageSummary())
			}
			if traceOut != nil {
				// Mark each experiment's section so one JSONL file holds
				// the whole run.
				fmt.Fprintf(traceOut, "{\"experiment\":%q}\n", id)
				if err := log.WriteJSONL(traceOut); err != nil {
					fatalf("writing -tracefile: %v", err)
				}
			}
			log.Reset()
		}
		if *csv {
			for _, fig := range rep.Figures {
				fmt.Printf("--- csv: %s ---\n%s\n", fig.Title, fig.CSV())
			}
		}
	}
	if *statsFile != "" {
		f, err := os.Create(*statsFile)
		if err != nil {
			fatalf("creating -statsfile: %v", err)
		}
		if err := suite.WriteStats(f); err != nil {
			fatalf("writing -statsfile: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing -statsfile: %v", err)
		}
	}
}

// writeReport writes the rendered report and one CSV per figure.
func writeReport(dir string, rep *core.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, rep.ID+".txt"), []byte(rep.Render()), 0o644); err != nil {
		return err
	}
	for i, fig := range rep.Figures {
		name := fmt.Sprintf("%s-%d.csv", rep.ID, i+1)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(fig.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("worker count %d < 1", n)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseDurations(s string) ([]time.Duration, error) {
	var out []time.Duration
	for _, part := range strings.Split(s, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if d <= 0 {
			return nil, fmt.Errorf("lag bound %v must be positive", d)
		}
		out = append(out, d)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("fault rate %g outside [0, 1]", f)
		}
		out = append(out, f)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "azurebench: "+format+"\n", args...)
	os.Exit(1)
}
