package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 8,64")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 8, 64}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestParseIntsErrors(t *testing.T) {
	for _, bad := range []string{"", "x", "1,,2", "0", "-3", "1,x"} {
		if _, err := parseInts(bad); err == nil {
			t.Errorf("parseInts(%q) accepted", bad)
		}
	}
}
