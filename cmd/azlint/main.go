// Command azlint is the repository's determinism-and-safety linter: a
// multichecker for the five analyzers in internal/analysis (walltime,
// seededrand, maporder, errdrop, simblock).
//
// It is normally run through the go command, which handles package
// loading, caching and export data:
//
//	go build -o bin/azlint ./cmd/azlint
//	go vet -vettool=bin/azlint ./...
//
// (`make lint` does exactly that.) It also runs standalone on package
// patterns, loading via `go list`:
//
//	go run ./cmd/azlint ./...
//
// Deliberate violations are suppressed in source with a mandatory
// justification: //azlint:allow <analyzer>(<reason>).
package main

import (
	"os"

	"azurebench/internal/analysis/driver"
)

func main() {
	os.Exit(driver.Main(os.Args[1:], os.Stdout, os.Stderr))
}
