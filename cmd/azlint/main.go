// Command azlint is the repository's determinism-and-safety linter: an
// interprocedural multichecker for the eight analyzers in
// internal/analysis (walltime, seededrand, maporder, digestunsafe,
// errdrop, simblock, lockorder, hotalloc). Wall-clock, global-rand and
// map-order taint is tracked across function and package boundaries
// through per-function fact summaries, and diagnostics report the full
// call chain at the sim-facing call site.
//
// It is normally run standalone on package patterns (loading the whole
// program via `go list -export -deps` and the gc export-data importer),
// with the committed legacy-debt baseline applied:
//
//	go build -o bin/azlint ./cmd/azlint
//	bin/azlint -baseline azlint.baseline ./...
//
// (`make lint` does exactly that.) Flags:
//
//	-fix          apply the suggested mechanical fixes in place
//	-json         emit findings as a JSON array on stdout
//	-sarif        emit SARIF 2.1.0 on stdout (for code scanning);
//	              baseline-suppressed findings carry suppressions[]
//	-o FILE       write -json/-sarif output to FILE instead of stdout
//	-baseline F   suppress findings listed in F (one
//	              "<basename>: <analyzer>: <message>" per line)
//	-debt         print the suppression-debt table (allows + baseline
//	              entries per analyzer) instead of findings
//
// It also still speaks the go vet -vettool protocol, exchanging its
// facts through the vet driver's per-package vetx files:
//
//	go vet -vettool=bin/azlint ./...
//
// Deliberate violations are suppressed in source with a mandatory
// justification: //azlint:allow <analyzer>(<reason>).
package main

import (
	"os"

	"azurebench/internal/analysis/driver"
)

func main() {
	os.Exit(driver.Main(os.Args[1:], os.Stdout, os.Stderr))
}
