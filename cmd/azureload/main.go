// Command azureload drives a live storage emulator (cmd/azurestore, or
// any endpoint speaking its REST dialect) with YCSB-style workloads and
// reports wall-clock throughput and latency percentiles — the live-mode
// counterpart of the simulated benchmarks in cmd/azurebench.
//
//	azurestore &                              # terminal 1
//	azureload -endpoint http://127.0.0.1:10000 \
//	          -service table -workload b -records 1000 -ops 5000 -c 8
//
// Services: table (YCSB CRUD over entities), queue (put/get/delete
// cycles), blob (upload/download cycles).
package main

import (
	"flag"
	"fmt"

	"os"
	"sync"
	"time"

	"azurebench/internal/metrics"
	"azurebench/internal/payload"
	"azurebench/internal/sdk"
	"azurebench/internal/sim"
	"azurebench/internal/storecommon"
	"azurebench/internal/tablestore"
	"azurebench/internal/workload"
)

func main() {
	var (
		endpoint    = flag.String("endpoint", "http://127.0.0.1:10000", "emulator endpoint")
		service     = flag.String("service", "table", "table | queue | blob")
		mixName     = flag.String("workload", "a", "YCSB workload a-f (table service)")
		records     = flag.Int("records", 1000, "records to preload")
		ops         = flag.Int("ops", 5000, "operations to run")
		concurrency = flag.Int("c", 8, "concurrent client goroutines")
		size        = flag.Int("size", 1024, "record/message/blob size in bytes")
		seed        = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	client := sdk.New(*endpoint, nil, sdk.DefaultRetryPolicy())
	var run func() (metrics.Dist, error)
	switch *service {
	case "table":
		mix, err := workload.MixByName(*mixName)
		if err != nil {
			fatal(err)
		}
		run = func() (metrics.Dist, error) {
			return runTable(client, mix, *records, *ops, *concurrency, int64(*size), *seed)
		}
	case "queue":
		run = func() (metrics.Dist, error) {
			return runQueue(client, *ops, *concurrency, int64(*size), *seed)
		}
	case "blob":
		run = func() (metrics.Dist, error) {
			return runBlob(client, *ops, *concurrency, int64(*size), *seed)
		}
	default:
		fatal(fmt.Errorf("unknown -service %q", *service))
	}

	start := time.Now()
	dist, err := run()
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("service=%s ops=%d concurrency=%d size=%dB\n", *service, dist.Count(), *concurrency, *size)
	fmt.Printf("elapsed=%v throughput=%.0f ops/s\n", elapsed.Round(time.Millisecond),
		float64(dist.Count())/elapsed.Seconds())
	fmt.Printf("latency: %s\n", dist.Summary())
}

// runTable preloads records then executes the mix.
func runTable(client *sdk.Client, mix workload.Mix, records, ops, concurrency int, size, seed int64) (metrics.Dist, error) {
	tc := client.Table()
	const table = "usertable"
	if err := tc.Create(table); err != nil && !storecommon.IsConflict(err) {
		return metrics.Dist{}, err
	}
	for i := 0; i < records; i++ {
		if _, err := tc.Insert(table, entityFor(uint64(seed), i, size)); err != nil && !storecommon.IsConflict(err) {
			return metrics.Dist{}, fmt.Errorf("preload record %d: %w", i, err)
		}
	}
	nextInsert := records
	var mu sync.Mutex // guards nextInsert
	return fanOut(ops, concurrency, func(worker, op int) error {
		r := sim.NewRand(seed + int64(worker)*1_000_003 + int64(op))
		chooser := workload.NewZipf(r, 0.99)
		switch mix.Pick(r) {
		case workload.OpRead:
			_, err := tc.Get(table, "load", workload.Key(chooser.Next(records)))
			return err
		case workload.OpUpdate:
			_, err := tc.Replace(table, entityFor(uint64(seed)+1, chooser.Next(records), size), storecommon.ETagAny)
			return err
		case workload.OpInsert:
			mu.Lock()
			i := nextInsert
			nextInsert++
			mu.Unlock()
			_, err := tc.Insert(table, entityFor(uint64(seed), i, size))
			return err
		case workload.OpScan:
			_, err := tc.Query(table, "", 10, tablestore.Continuation{})
			return err
		default: // read-modify-write
			e, err := tc.Get(table, "load", workload.Key(chooser.Next(records)))
			if err != nil {
				return err
			}
			e.Props["Field0"] = tablestore.Binary(payload.Synthetic(uint64(op), size))
			_, err = tc.Replace(table, e, storecommon.ETagAny)
			return err
		}
	})
}

func entityFor(seed uint64, i int, size int64) *tablestore.Entity {
	return &tablestore.Entity{
		PartitionKey: "load",
		RowKey:       workload.Key(i),
		Props: map[string]tablestore.Value{
			"Field0": tablestore.Binary(workload.Record(seed, i, size)),
		},
	}
}

func runQueue(client *sdk.Client, ops, concurrency int, size, seed int64) (metrics.Dist, error) {
	qc := client.Queue()
	const queue = "loadqueue"
	if err := qc.Create(queue); err != nil && !storecommon.IsConflict(err) {
		return metrics.Dist{}, err
	}
	body := payload.Synthetic(uint64(seed), size).Materialize()
	return fanOut(ops, concurrency, func(worker, op int) error {
		if err := qc.Put(queue, body, 0); err != nil {
			return err
		}
		msgs, err := qc.Get(queue, 1, time.Minute)
		if err != nil {
			return err
		}
		if len(msgs) == 1 {
			return qc.DeleteMessage(queue, msgs[0].ID, msgs[0].PopReceipt)
		}
		return nil
	})
}

func runBlob(client *sdk.Client, ops, concurrency int, size, seed int64) (metrics.Dist, error) {
	bc := client.Blob()
	const container = "loadblobs"
	if err := bc.CreateContainer(container); err != nil && !storecommon.IsConflict(err) {
		return metrics.Dist{}, err
	}
	return fanOut(ops, concurrency, func(worker, op int) error {
		name := fmt.Sprintf("blob-%d-%d", worker, op)
		data := payload.Synthetic(uint64(seed)+uint64(op), size).Materialize()
		if err := bc.Upload(container, name, data); err != nil {
			return err
		}
		got, err := bc.Download(container, name)
		if err != nil {
			return err
		}
		if len(got) != len(data) {
			return fmt.Errorf("blob %s: read %d bytes, wrote %d", name, len(got), len(data))
		}
		return bc.Delete(container, name)
	})
}

// fanOut spreads ops across concurrency goroutines, timing each op.
func fanOut(ops, concurrency int, op func(worker, op int) error) (metrics.Dist, error) {
	if concurrency < 1 {
		concurrency = 1
	}
	dists := make([]metrics.Dist, concurrency)
	errs := make([]error, concurrency)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < ops; i += concurrency {
				t0 := time.Now()
				if err := op(w, i); err != nil {
					errs[w] = fmt.Errorf("worker %d op %d: %w", w, i, err)
					return
				}
				dists[w].Add(time.Since(t0))
			}
		}()
	}
	wg.Wait()
	var merged metrics.Dist
	for w := range dists {
		if errs[w] != nil {
			return merged, errs[w]
		}
		merged.Merge(&dists[w])
	}
	return merged, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "azureload:", err)
	os.Exit(1)
}
