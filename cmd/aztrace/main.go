// Command aztrace analyses JSONL trace exports (azurebench -tracefile,
// or a live emulator's trace log):
//
//	aztrace summary  run.jsonl            # forest + verify + stage table
//	aztrace critpath run.jsonl            # critical path of the slowest traces
//	aztrace tail     -pct 99 run.jsonl    # tail-latency attribution table
//	aztrace chrome   run.jsonl > t.json   # Chrome trace-event export
//	aztrace flame    run.jsonl > t.folded # collapsed stacks for flamegraph.pl
//	aztrace diff     old.jsonl new.jsonl  # stage-by-stage p50/p99 diff
//
// The chrome output loads in chrome://tracing or ui.perfetto.dev; the
// flame output feeds flamegraph.pl (or any collapsed-stack renderer).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"azurebench/internal/tracegraph"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: aztrace <command> [flags] <trace.jsonl> [trace2.jsonl]

commands:
  summary    forest statistics, invariant check, and stage profiles
  critpath   critical path of the slowest causal trees (-n, -pct)
  tail       tail-latency attribution table (-pct)
  chrome     Chrome trace-event JSON on stdout
  flame      collapsed stacks for flamegraph.pl on stdout
  diff       stage-by-stage p50/p99 diff of two traces`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet("aztrace "+cmd, flag.ExitOnError)
	pct := fs.Float64("pct", 99, "tail percentile (tail, critpath)")
	topN := fs.Int("n", 3, "how many slowest traces to print (critpath)")
	fs.Parse(os.Args[2:])

	want := 1
	if cmd == "diff" {
		want = 2
	}
	if fs.NArg() != want {
		usage()
	}
	tr := load(fs.Arg(0))

	switch cmd {
	case "summary":
		summary(tr)
	case "critpath":
		critpath(tr, *topN, *pct)
	case "tail":
		fmt.Print(tracegraph.RenderTail(tr.TailAttribution(*pct), *pct))
	case "chrome":
		if err := tracegraph.WriteChrome(os.Stdout, tr); err != nil {
			fatal(err)
		}
	case "flame":
		if err := tracegraph.WriteFlame(os.Stdout, tr); err != nil {
			fatal(err)
		}
	case "diff":
		fmt.Print(tracegraph.RenderDiff(tracegraph.Diff(tr, load(fs.Arg(1)))))
	default:
		usage()
	}
}

func load(path string) *tracegraph.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := tracegraph.Read(f)
	if err != nil {
		fatal(err)
	}
	return tr
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "aztrace: %v\n", err)
	os.Exit(1)
}

// summary prints the forest shape, the invariant check, and per-group
// stage percentiles.
func summary(tr *tracegraph.Trace) {
	f := tr.Forest()
	rep := tr.Verify()
	fmt.Printf("ops: %d  roots: %d  standalone: %d  orphans: %d\n",
		rep.Ops, len(f.Roots), rep.Standalone, rep.Orphans)
	if tr.Meta.Dropped > 0 {
		fmt.Printf("eviction: %d ops dropped, window truncated before %v\n",
			tr.Meta.Dropped, tr.Meta.EvictedBefore)
	}
	if len(tr.Meta.Experiments) > 0 {
		fmt.Printf("experiments: %s\n", strings.Join(tr.Meta.Experiments, ", "))
	}
	switch {
	case rep.Complete():
		fmt.Println("causal trees: complete (every non-root span resolves its parent)")
	default:
		fmt.Printf("causal trees: INCOMPLETE (%d orphaned spans)\n", rep.Orphans)
	}
	if rep.SpanMismatches > 0 {
		fmt.Printf("stage partition: %d ops whose stages do not sum to their duration\n", rep.SpanMismatches)
	}
	fmt.Println()
	for _, p := range tr.Profiles() {
		fmt.Printf("%s/%s: n=%d p50=%v p99=%v\n", p.Service, p.Name, p.Count,
			p.Percentile(50).Round(time.Microsecond), p.Percentile(99).Round(time.Microsecond))
	}
}

// chainDuration is the summed duration of a root's critical path.
func chainDuration(root *tracegraph.Node) time.Duration {
	var sum time.Duration
	for _, step := range tracegraph.CriticalPath(root) {
		sum += step.Op.Duration
	}
	return sum
}

// critpath prints the critical path of the n slowest causal trees, plus
// the aggregate stage breakdown of every tree above the pct-th
// percentile chain duration.
func critpath(tr *tracegraph.Trace, n int, pct float64) {
	f := tr.Forest()
	if len(f.Roots) == 0 {
		fmt.Println("(no operations)")
		return
	}
	type chain struct {
		root *tracegraph.Node
		dur  time.Duration
	}
	chains := make([]chain, 0, len(f.Roots))
	for _, r := range f.Roots {
		chains = append(chains, chain{r, chainDuration(r)})
	}
	sort.SliceStable(chains, func(i, j int) bool { return chains[i].dur > chains[j].dur })

	if n > len(chains) {
		n = len(chains)
	}
	fmt.Printf("critical path of the %d slowest traces:\n", n)
	for i := 0; i < n; i++ {
		c := chains[i]
		fmt.Printf("\n#%d  %v  trace=%s\n", i+1, c.dur.Round(time.Microsecond), c.root.Op.TraceID)
		for _, step := range tracegraph.CriticalPath(c.root) {
			var stages []string
			names := make([]string, 0, len(step.Stages))
			for st := range step.Stages {
				names = append(names, st)
			}
			sort.Strings(names)
			for _, st := range names {
				stages = append(stages, fmt.Sprintf("%s=%v", st, step.Stages[st].Round(time.Microsecond)))
			}
			status := ""
			if step.Op.Err != "" {
				status = "  err=" + step.Op.Err
			}
			fmt.Printf("  %s %s/%s  %v%s  [%s]\n", step.Op.Client, step.Op.Service,
				step.Op.Name, step.Op.Duration.Round(time.Microsecond), status,
				strings.Join(stages, " "))
		}
	}

	// Aggregate stage attribution over the slow-chain population.
	durs := make([]time.Duration, len(chains))
	for i, c := range chains {
		durs[i] = c.dur
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	rank := int(pct / 100 * float64(len(durs)))
	if rank < 1 {
		rank = 1
	}
	if rank > len(durs) {
		rank = len(durs)
	}
	thresh := durs[rank-1]
	agg := map[string]time.Duration{}
	var total time.Duration
	var slow int
	for _, c := range chains {
		if c.dur < thresh {
			continue
		}
		slow++
		for _, step := range tracegraph.CriticalPath(c.root) {
			for st, d := range step.Stages {
				agg[st] += d
				total += d
			}
		}
	}
	if total == 0 {
		return
	}
	fmt.Printf("\nstage breakdown of the %d traces >= p%g (%v):\n", slow, pct, thresh.Round(time.Microsecond))
	names := make([]string, 0, len(agg))
	for st := range agg {
		names = append(names, st)
	}
	sort.Slice(names, func(i, j int) bool { return agg[names[i]] > agg[names[j]] })
	for _, st := range names {
		fmt.Printf("  %-14s %10v  %5.1f%%\n", st, agg[st].Round(time.Microsecond),
			100*float64(agg[st])/float64(total))
	}
}
