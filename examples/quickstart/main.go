// Quickstart: stand up a simulated Azure storage account and exercise the
// three storage services the way the paper's Section II describes them —
// blobs for bulk data, queues for coordination, tables for structured
// records. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"azurebench/internal/cloud"
	"azurebench/internal/model"
	"azurebench/internal/payload"
	"azurebench/internal/sim"
	"azurebench/internal/storecommon"
	"azurebench/internal/tablestore"
)

func main() {
	env := sim.NewEnv(42)
	c := cloud.New(env, model.Default())
	client := c.NewClient("quickstart-vm", model.Small)

	env.Go("quickstart", func(p *sim.Proc) {
		// --- Blob storage: upload a 4 MB block blob and read it back ---
		must(client.CreateContainer(p, "demo"))
		data := payload.Synthetic(7, 4<<20)
		must(client.UploadBlockBlob(p, "demo", "dataset.bin", data))
		got, err := client.Download(p, "demo", "dataset.bin")
		must(err)
		fmt.Printf("blob: uploaded and downloaded %d bytes, intact=%v (virtual t=%v)\n",
			got.Len(), payload.Equal(got, data), p.Now().Round(time.Millisecond))

		// --- Queue storage: the classic task-message round trip ---
		must(client.CreateQueue(p, "demo-tasks"))
		_, err = client.PutMessage(p, "demo-tasks", payload.String("process dataset.bin"))
		must(err)
		msg, ok, err := client.GetMessage(p, "demo-tasks", time.Minute)
		must(err)
		if !ok {
			log.Fatal("queue unexpectedly empty")
		}
		fmt.Printf("queue: dequeued %q (invisible until %v)\n",
			msg.Body.Materialize(), msg.NextVisible.Format(time.TimeOnly))
		must(client.DeleteMessage(p, "demo-tasks", msg.ID, msg.PopReceipt))

		// --- Table storage: schemaless entities + a filtered query ---
		must(client.CreateTable(p, "runs"))
		for i, status := range []string{"ok", "ok", "failed"} {
			e := &tablestore.Entity{
				PartitionKey: "experiment-1",
				RowKey:       fmt.Sprintf("run-%d", i),
				Props: map[string]tablestore.Value{
					"Status":  tablestore.String(status),
					"Samples": tablestore.Int32(int32(1000 * (i + 1))),
				},
			}
			_, err := client.InsertEntity(p, "runs", e)
			must(err)
		}
		res, err := client.QueryEntities(p, "runs", "experiment-1",
			"Status eq 'ok' and Samples ge 2000", 0, tablestore.Continuation{})
		must(err)
		fmt.Printf("table: filter matched %d of 3 entities\n", len(res.Entities))

		// --- Optimistic concurrency: the ETag protocol ---
		e, err := client.GetEntity(p, "runs", "experiment-1", "run-0")
		must(err)
		stale := e.ETag
		e.Props["Status"] = tablestore.String("archived")
		_, err = client.UpdateEntity(p, "runs", e, stale) // matching tag: ok
		must(err)
		_, err = client.UpdateEntity(p, "runs", e, stale) // stale now: rejected
		fmt.Printf("table: stale-ETag update rejected=%v; wildcard update ok=%v\n",
			storecommon.IsPreconditionFailed(err), func() bool {
				_, err := client.UpdateEntity(p, "runs", e, storecommon.ETagAny)
				return err == nil
			}())
	})
	env.Run()
	fmt.Printf("done: %d storage ops in %v of virtual time\n",
		c.Stats().Ops, env.Now().Round(time.Millisecond))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
