// Iterative MapReduce on Azure primitives, in the style of Twister4Azure
// [Ekanayake et al.], which the paper cites as proof of its framework: a
// k-means clustering where each iteration's map tasks flow through the
// task queue, centroids are broadcast through Blob storage, partial sums
// are emitted to Table storage, and the Algorithm 2 queue barrier
// separates iterations.
//
//	go run ./examples/mapreduce -workers 8 -points 20000 -k 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"azurebench/internal/cloud"
	"azurebench/internal/model"
	"azurebench/internal/payload"
	"azurebench/internal/roles"
	"azurebench/internal/sim"
	"azurebench/internal/tablestore"
)

type point struct{ X, Y float64 }

func main() {
	workers := flag.Int("workers", 8, "map workers")
	nPoints := flag.Int("points", 20000, "points to cluster")
	k := flag.Int("k", 4, "clusters")
	maxIter := flag.Int("iters", 12, "max iterations")
	flag.Parse()

	// Synthetic blobs of points around k true centers.
	truth := make([]point, *k)
	rng := sim.NewRand(99)
	for i := range truth {
		truth[i] = point{X: float64(i*10 + 5), Y: float64((i%2)*10 + 3)}
	}
	points := make([]point, *nPoints)
	for i := range points {
		c := truth[i%*k]
		points[i] = point{X: c.X + rng.NormFloat64(), Y: c.Y + rng.NormFloat64()}
	}

	env := sim.NewEnv(2012)
	c := cloud.New(env, model.Default())

	const (
		container  = "kmeans"
		centBlob   = "centroids.json"
		sumsTable  = "kmeanssums"
		mapQueue   = "kmeans-map"
		syncQ      = "kmeans-sync"
		iterLabels = "iteration-%03d"
	)

	// The driver (web role) seeds storage: point-range blobs + initial
	// centroids.
	driver := c.NewClient("driver", model.Large)
	env.Go("seed", func(p *sim.Proc) {
		must(driver.CreateContainer(p, container))
		must(err2(driver.CreateTableIfNotExists(p, sumsTable)))
		must(roles.EnsureQueues(p, driver, mapQueue, syncQ))
		for w := 0; w < *workers; w++ {
			lo, n := split(*nPoints, *workers, w)
			buf, err := json.Marshal(points[lo : lo+n])
			must(err)
			must(driver.UploadBlockBlob(p, container, chunkBlob(w), payload.Bytes(buf)))
		}
		init := make([]point, *k)
		for i := range init {
			init[i] = points[i*17%len(points)] // arbitrary distinct seeds
		}
		must(putCentroids(p, driver, container, centBlob, init))
	})
	env.Run()

	iterations := 0
	var finalShift float64

	// Map workers: each iteration, claim your chunk task, read centroids,
	// emit partial sums, hit the barrier.
	for w := 0; w < *workers; w++ {
		w := w
		cl := c.NewClient(fmt.Sprintf("mapper%d", w), model.Medium)
		env.Go(fmt.Sprintf("mapper%d", w), func(p *sim.Proc) {
			b := roles.NewBarrier(syncQ, *workers+1) // +1: the driver joins too
			for iter := 0; iter < *maxIter; iter++ {
				cents, err := getCentroids(p, cl, container, centBlob)
				must(err)
				raw, err := cl.Download(p, container, chunkBlob(w))
				must(err)
				var mine []point
				must(json.Unmarshal(raw.Materialize(), &mine))
				// Assign + partial sums.
				sumX := make([]float64, len(cents))
				sumY := make([]float64, len(cents))
				cnt := make([]int64, len(cents))
				for _, pt := range mine {
					best, bestD := 0, math.Inf(1)
					for ci, cc := range cents {
						d := (pt.X-cc.X)*(pt.X-cc.X) + (pt.Y-cc.Y)*(pt.Y-cc.Y)
						if d < bestD {
							best, bestD = ci, d
						}
					}
					sumX[best] += pt.X
					sumY[best] += pt.Y
					cnt[best]++
				}
				p.Sleep(time.Duration(len(mine)/2) * time.Millisecond) // map compute
				for ci := range cents {
					e := &tablestore.Entity{
						PartitionKey: fmt.Sprintf(iterLabels, iter),
						RowKey:       fmt.Sprintf("w%03d-c%03d", w, ci),
						Props: map[string]tablestore.Value{
							"SumX":  tablestore.Double(sumX[ci]),
							"SumY":  tablestore.Double(sumY[ci]),
							"Count": tablestore.Int64(cnt[ci]),
							"C":     tablestore.Int32(int32(ci)),
						},
					}
					_, err := cl.InsertEntity(p, sumsTable, e)
					must(err)
				}
				must(b.Wait(p, cl)) // map barrier
				must(b.Wait(p, cl)) // reduce barrier (driver updates centroids)
			}
		})
	}

	// Driver: after each map barrier, reduce the partial sums, write new
	// centroids, decide convergence.
	env.Go("driver", func(p *sim.Proc) {
		b := roles.NewBarrier(syncQ, *workers+1)
		for iter := 0; iter < *maxIter; iter++ {
			must(b.Wait(p, driver)) // wait for all map outputs
			cents, err := getCentroids(p, driver, container, centBlob)
			must(err)
			sumX := make([]float64, len(cents))
			sumY := make([]float64, len(cents))
			cnt := make([]int64, len(cents))
			res, err := driver.QueryEntities(p, sumsTable, fmt.Sprintf(iterLabels, iter),
				fmt.Sprintf("PartitionKey eq '%s'", fmt.Sprintf(iterLabels, iter)), 0, tablestore.Continuation{})
			must(err)
			for _, e := range res.Entities {
				ci := int(e.Props["C"].I)
				sumX[ci] += e.Props["SumX"].F
				sumY[ci] += e.Props["SumY"].F
				cnt[ci] += e.Props["Count"].I
			}
			shift := 0.0
			next := make([]point, len(cents))
			for ci := range cents {
				if cnt[ci] == 0 {
					next[ci] = cents[ci]
					continue
				}
				next[ci] = point{X: sumX[ci] / float64(cnt[ci]), Y: sumY[ci] / float64(cnt[ci])}
				shift += math.Hypot(next[ci].X-cents[ci].X, next[ci].Y-cents[ci].Y)
			}
			must(putCentroids(p, driver, container, centBlob, next))
			iterations = iter + 1
			finalShift = shift
			// All parties run the fixed iteration count: an early break
			// here would leave the mappers polling the barrier forever
			// (convergence is reported, not acted on — like a fixed-round
			// Twister job).
			must(b.Wait(p, driver)) // release mappers into next iteration
		}
	})
	env.Run()

	cents, _ := loadCentroidsEngine(c, container, centBlob)
	fmt.Printf("k-means: %d points, k=%d, %d iterations, final shift %.2e (virtual time %v)\n",
		*nPoints, *k, iterations, finalShift, env.Now().Round(time.Second))
	for i, cc := range cents {
		fmt.Printf("  centroid %d: (%.2f, %.2f)  true (%.0f, %.0f)\n", i, cc.X, cc.Y, truth[i].X, truth[i].Y)
	}
}

func chunkBlob(w int) string { return fmt.Sprintf("points-%03d.json", w) }

func putCentroids(p *sim.Proc, c *cloud.Client, container, blob string, cents []point) error {
	buf, err := json.Marshal(cents)
	if err != nil {
		return err
	}
	return c.UploadBlockBlob(p, container, blob, payload.Bytes(buf))
}

func getCentroids(p *sim.Proc, c *cloud.Client, container, blob string) ([]point, error) {
	raw, err := c.Download(p, container, blob)
	if err != nil {
		return nil, err
	}
	var cents []point
	if err := json.Unmarshal(raw.Materialize(), &cents); err != nil {
		return nil, err
	}
	return cents, nil
}

func loadCentroidsEngine(c *cloud.Cloud, container, blob string) ([]point, error) {
	raw, _, err := c.Blob.Download(container, blob)
	if err != nil {
		return nil, err
	}
	var cents []point
	err = json.Unmarshal(raw.Materialize(), &cents)
	return cents, err
}

func split(total, w, k int) (start, n int) {
	base := total / w
	extra := total % w
	start = k*base + minInt(k, extra)
	n = base
	if k < extra {
		n++
	}
	return
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func err2(_ bool, err error) error { return err }
