// Livestore: the wall-clock counterpart of the quickstart. It starts the
// REST storage emulator in-process (what `azurestore` serves), talks to it
// through the Go client SDK over real HTTP, and demonstrates the paper's
// ServerBusy/retry discipline against the emulator's scalability-target
// throttling.
//
//	go run ./examples/livestore
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"azurebench/internal/payload"
	"azurebench/internal/rest"
	"azurebench/internal/sdk"
	"azurebench/internal/tablestore"
)

func main() {
	// Serve the emulator on an ephemeral local port, throttled to a tiny
	// per-queue rate so we can watch the retry policy at work.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server := rest.NewServer(rest.Options{Throttle: true, QueueOpsPerSec: 40})
	go http.Serve(ln, server)
	endpoint := "http://" + ln.Addr().String()
	fmt.Printf("emulator listening on %s\n", endpoint)

	client := sdk.New(endpoint, nil, sdk.RetryPolicy{MaxRetries: 10, Backoff: 100 * time.Millisecond})

	// Blob over the wire.
	blob := client.Blob()
	must(blob.CreateContainer("live"))
	data := payload.Synthetic(1, 256<<10).Materialize()
	must(blob.Upload("live", "large.bin", data))
	got, err := blob.Download("live", "large.bin")
	must(err)
	fmt.Printf("blob: %d bytes over HTTP, intact=%v\n", len(got), len(got) == len(data))

	// Table over the wire.
	table := client.Table()
	must(table.Create("LiveRuns"))
	etag, err := table.Insert("LiveRuns", &tablestore.Entity{
		PartitionKey: "p", RowKey: "r",
		Props: map[string]tablestore.Value{"Count": tablestore.Int64(12345678901)},
	})
	must(err)
	e, err := table.Get("LiveRuns", "p", "r")
	must(err)
	fmt.Printf("table: Int64 survived JSON round trip: %d (etag %q)\n", e.Props["Count"].I, etag)

	// Queue with throttling: 80 back-to-back puts against a 40 ops/s
	// budget force 503s that the SDK's retry policy absorbs.
	queue := client.Queue()
	must(queue.Create("live-tasks"))
	start := time.Now()
	for i := 0; i < 80; i++ {
		must(queue.Put("live-tasks", []byte(fmt.Sprintf("job %d", i)), 0))
	}
	elapsed := time.Since(start)
	n, err := queue.ApproximateCount("live-tasks")
	must(err)
	fmt.Printf("queue: 80 puts against a 40 ops/s throttle took %v (all delivered: %v)\n",
		elapsed.Round(10*time.Millisecond), n == 80)
	if elapsed < 500*time.Millisecond {
		fmt.Println("queue: (throttle did not engage — unexpected on a fast machine)")
	} else {
		fmt.Println("queue: ServerBusy responses were absorbed by the paper's sleep-and-retry policy")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
