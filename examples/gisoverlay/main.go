// GIS overlay processing in the style of Crayons [Agarwal et al.], the
// application that motivated the paper's framework: two polygon layers of
// a map are partitioned into a grid of cells, each cell's data lives in
// Blob storage, cell tasks flow through the task-assignment queue, and
// worker roles download both layers, compute the overlay, and upload the
// result. The example runs the same workload at two worker counts and
// reports the speedup.
//
//	go run ./examples/gisoverlay -cells 36
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"time"

	"azurebench/internal/cloud"
	"azurebench/internal/fabric"
	"azurebench/internal/model"
	"azurebench/internal/payload"
	"azurebench/internal/roles"
	"azurebench/internal/sim"
)

const (
	baseLayer    = "gis-base"
	overlayLayer = "gis-overlay"
	outLayer     = "gis-out"
)

func main() {
	cells := flag.Int("cells", 36, "map grid cells")
	flag.Parse()

	t1 := runOverlay(*cells, 1)
	t16 := runOverlay(*cells, 16)
	fmt.Printf("\nend-to-end (virtual): 1 worker %v, 16 workers %v — speedup %.1fx\n",
		t1.Round(time.Second), t16.Round(time.Second), t1.Seconds()/t16.Seconds())
}

// cellSize returns the synthetic polygon-data size of a cell: skewed so
// some cells are 10x heavier than others (load imbalance is what the task
// pool absorbs).
func cellSize(cell int) int64 {
	r := sim.NewRand(int64(cell))
	return (64 + int64(r.Intn(576))) << 10 // 64 KB .. 640 KB
}

func runOverlay(cells, workers int) time.Duration {
	env := sim.NewEnv(7)
	c := cloud.New(env, model.Default())

	// Ingest: the web role uploads both layers, one blob per (layer, cell).
	ingest := c.NewClient("ingest", model.Large)
	env.Go("ingest", func(p *sim.Proc) {
		for _, container := range []string{baseLayer, overlayLayer, outLayer} {
			if _, err := ingest.CreateContainerIfNotExists(p, container); err != nil {
				log.Fatal(err)
			}
		}
		for cell := 0; cell < cells; cell++ {
			size := cellSize(cell)
			for i, container := range []string{baseLayer, overlayLayer} {
				data := payload.Synthetic(uint64(cell*2+i), size)
				if err := ingest.UploadBlockBlob(p, container, blobName(cell), data); err != nil {
					log.Fatal(err)
				}
			}
		}
	})
	env.Run()
	ingested := env.Now()

	var bytesProcessed int64
	tasks := make([]payload.Payload, cells)
	for i := range tasks {
		tasks[i] = payload.String(strconv.Itoa(i))
	}
	res, err := roles.RunBagOfTasks(roles.BagOfTasksConfig{
		Cloud:      c,
		Name:       fmt.Sprintf("overlay%d", workers),
		Workers:    workers,
		WorkerVM:   model.Medium,
		Tasks:      tasks,
		Visibility: 10 * time.Minute,
		Work: func(ctx *fabric.Context, task roles.Task) error {
			p, cl := ctx.Proc, ctx.Client
			cell, err := strconv.Atoi(string(task.Body.Materialize()))
			if err != nil {
				return err
			}
			base, err := cl.Download(p, baseLayer, blobName(cell))
			if err != nil {
				return err
			}
			over, err := cl.Download(p, overlayLayer, blobName(cell))
			if err != nil {
				return err
			}
			// Overlay compute: proportional to the polygon data volume.
			n := base.Len() + over.Len()
			p.Sleep(time.Duration(n/1024) * 3 * time.Millisecond)
			bytesProcessed += n
			result := payload.Concat(base.Slice(0, base.Len()/2), over.Slice(0, over.Len()/2))
			return cl.UploadBlockBlob(p, outLayer, blobName(cell), result)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := res.Elapsed
	fmt.Printf("workers=%2d: %d cells, %.1f MB of polygon data, ingest %v, overlay %v (completed=%d)\n",
		workers, cells, float64(bytesProcessed)/(1<<20), ingested.Round(time.Second),
		elapsed.Round(time.Second), res.Completed)
	return elapsed
}

func blobName(cell int) string { return fmt.Sprintf("cell-%04d.poly", cell) }
