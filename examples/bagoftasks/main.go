// Bag-of-tasks Monte Carlo π on the paper's generic application framework
// (Section III, Figure 3): a web role submits sampling tasks to the task
// assignment queue, worker roles drain it, per-task results land in Table
// storage, and the termination-indicator queue drives completion. One
// worker is deliberately crashed mid-task to demonstrate the queue's
// built-in fault tolerance (the claimed task reappears and is redone).
//
//	go run ./examples/bagoftasks -workers 8 -tasks 64
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strconv"
	"time"

	"azurebench/internal/cloud"
	"azurebench/internal/fabric"
	"azurebench/internal/model"
	"azurebench/internal/payload"
	"azurebench/internal/roles"
	"azurebench/internal/sim"
	"azurebench/internal/tablestore"
)

func main() {
	workers := flag.Int("workers", 8, "worker role instances")
	tasks := flag.Int("tasks", 64, "sampling tasks")
	samplesPer := flag.Int("samples", 200_000, "samples per task")
	inject := flag.Bool("inject-fault", true, "crash one worker mid-task")
	flag.Parse()

	env := sim.NewEnv(2012)
	c := cloud.New(env, model.Default())

	// Result table, created up front.
	setup := c.NewClient("setup", model.Small)
	env.Go("setup", func(p *sim.Proc) {
		if _, err := setup.CreateTableIfNotExists(p, "mcpi"); err != nil {
			log.Fatal(err)
		}
	})
	env.Run()

	var taskBodies []payload.Payload
	for i := 0; i < *tasks; i++ {
		taskBodies = append(taskBodies, payload.String(strconv.Itoa(i)))
	}

	faultArmed := *inject
	res, err := roles.RunBagOfTasks(roles.BagOfTasksConfig{
		Cloud:      c,
		Name:       "mcpi",
		Workers:    *workers,
		Tasks:      taskBodies,
		Visibility: 2 * time.Minute,
		Work: func(ctx *fabric.Context, task roles.Task) error {
			p, cl := ctx.Proc, ctx.Client
			id, err := strconv.Atoi(string(task.Body.Materialize()))
			if err != nil {
				return err
			}
			if faultArmed && ctx.Instance.ID() == 0 {
				faultArmed = false
				fmt.Printf("[fault] recycling %s while it holds task %d\n", ctx.Instance.Name(), id)
				ctx.Instance.RequestSelfRecycle()
				ctx.Checkpoint() // never returns; task claim is lost
			}
			// Deterministic sampling: the task id seeds the stream.
			rng := sim.NewRand(int64(id) + 1)
			in := 0
			for s := 0; s < *samplesPer; s++ {
				x, y := rng.Float64(), rng.Float64()
				if x*x+y*y <= 1 {
					in++
				}
			}
			p.Sleep(2 * time.Second) // the compute the samples would cost
			_, err = cl.InsertEntity(p, "mcpi", &tablestore.Entity{
				PartitionKey: "results",
				RowKey:       fmt.Sprintf("task-%05d", id),
				Props: map[string]tablestore.Value{
					"InCircle": tablestore.Int64(int64(in)),
					"Samples":  tablestore.Int64(int64(*samplesPer)),
					"Worker":   tablestore.String(ctx.Instance.Name()),
				},
			})
			return err
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Aggregate the per-task results (engine read; the run is over).
	entities, err := c.Table.QueryAll("mcpi", "PartitionKey eq 'results'")
	if err != nil {
		log.Fatal(err)
	}
	var in, total int64
	for _, e := range entities {
		in += e.Props["InCircle"].I
		total += e.Props["Samples"].I
	}
	pi := 4 * float64(in) / float64(total)
	fmt.Printf("π ≈ %.6f (error %.2e) from %d samples across %d task results\n",
		pi, math.Abs(pi-math.Pi), total, len(entities))
	fmt.Printf("completed=%d tasks, worker restarts=%d, virtual time=%v\n",
		res.Completed, res.WorkerRestarts, res.Elapsed.Round(time.Second))
	if res.WorkerRestarts > 0 && res.Completed >= *tasks {
		fmt.Println("fault tolerance: the crashed worker's task reappeared and was completed by another instance")
	}
}
