// Package azurebench is an open-source reproduction of "AzureBench:
// Benchmarking the Storage Services of the Azure Cloud Platform" (Agarwal
// & Prasad, IPDPS Workshops 2012) as a self-contained Go system: the three
// Azure storage engines (Blob, Queue, Table), a discrete-event simulated
// datacenter with the documented scalability targets, the paper's
// worker-role application framework, the benchmark suite regenerating
// every table and figure, an Azurite-style REST emulator with a Go client
// SDK, and example applications.
//
// Entry points:
//
//   - cmd/azurebench — regenerate the paper's tables and figures
//   - cmd/azurestore — serve the storage emulator over HTTP
//   - cmd/azureload  — drive a live emulator with YCSB-style workloads
//   - examples/      — quickstart and domain applications
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package azurebench

// Version identifies the reproduction release.
const Version = "1.0.0"
