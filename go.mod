module azurebench

go 1.22
